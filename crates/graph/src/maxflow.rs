//! Dinic's maximum flow with path decomposition.
//!
//! The Flash baseline [10] routes large ("elephant") payments along the
//! paths of a bounded max-flow between sender and receiver. We implement
//! Dinic's algorithm over integer (millitoken) capacities and decompose the
//! resulting flow into augmenting paths so the router can send value along
//! each path proportionally.

use std::collections::VecDeque;

use pcn_types::{ChannelId, NodeId};

use crate::{EdgeRef, Path, SearchWorkspace, Topology};

/// Reusable Dinic state: residual arc table, adjacency heads, BFS levels,
/// DFS cursors, per-arc flow and the decomposition's visited marks.
#[derive(Debug, Default)]
pub(crate) struct MaxFlowScratch {
    head: Vec<Vec<usize>>,
    arcs: Vec<Arc>,
    level: Vec<i32>,
    iter: Vec<usize>,
    flow: Vec<u64>,
    visited: Vec<bool>,
    queue: VecDeque<usize>,
}

/// One path of a flow decomposition, carrying `amount` units.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlowPath {
    /// The path through the graph.
    pub path: Path,
    /// Flow assigned to this path (same unit as the capacity closure).
    pub amount: u64,
}

/// Result of a max-flow computation.
#[derive(Clone, Debug)]
pub struct MaxFlowResult {
    /// Total flow value from source to sink.
    pub value: u64,
    /// Decomposition of the flow into source→sink paths.
    pub paths: Vec<FlowPath>,
}

#[derive(Clone, Copy, Debug)]
struct Arc {
    to: usize,
    cap: u64,
    /// index of the reverse arc in `arcs`
    rev: usize,
    /// originating channel (None for artificial reverse arcs with 0 cap)
    channel: Option<ChannelId>,
}

/// Computes the max flow from `source` to `sink`.
///
/// `capacity` gives the usable capacity of each directed channel view
/// (`None`/0 = unusable). Both directions of a channel may carry capacity —
/// exactly the PCN situation where each direction holds its own balance.
///
/// Complexity: O(V²E) worst case (Dinic), far below that on sparse PCN
/// topologies.
///
/// # Examples
///
/// ```
/// use pcn_graph::{max_flow, Graph};
/// use pcn_types::NodeId;
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// let r = max_flow(&g, NodeId::new(0), NodeId::new(2), |_| Some(7));
/// assert_eq!(r.value, 7);
/// assert_eq!(r.paths.len(), 1);
/// ```
pub fn max_flow<G, F>(g: &G, source: NodeId, sink: NodeId, capacity: F) -> MaxFlowResult
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<u64>,
{
    max_flow_scratch(g, &mut MaxFlowScratch::default(), source, sink, capacity)
}

/// [`max_flow`] running on the reusable buffers of a [`SearchWorkspace`]:
/// repeated calls are allocation-free once the residual tables have grown
/// (the decomposed [`FlowPath`]s are the output and still allocate), and
/// bit-identical to the allocating form.
pub fn max_flow_in<G, F>(
    g: &G,
    ws: &mut SearchWorkspace,
    source: NodeId,
    sink: NodeId,
    capacity: F,
) -> MaxFlowResult
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<u64>,
{
    max_flow_scratch(g, &mut ws.maxflow, source, sink, capacity)
}

fn max_flow_scratch<G, F>(
    g: &G,
    scratch: &mut MaxFlowScratch,
    source: NodeId,
    sink: NodeId,
    mut capacity: F,
) -> MaxFlowResult
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<u64>,
{
    let n = g.node_count();
    if source.index() >= n || sink.index() >= n || source == sink {
        return MaxFlowResult {
            value: 0,
            paths: Vec::new(),
        };
    }
    // Build residual arcs: one forward arc per directed channel view with
    // positive capacity, plus a 0-capacity reverse arc.
    for l in scratch.head.iter_mut() {
        l.clear();
    }
    if scratch.head.len() < n {
        scratch.head.resize_with(n, Vec::new);
    }
    scratch.head.truncate(n);
    scratch.arcs.clear();
    let head = &mut scratch.head;
    let arcs = &mut scratch.arcs;
    for e in g.directed_edges() {
        let Some(c) = capacity(e) else { continue };
        if c == 0 {
            continue;
        }
        let fwd = arcs.len();
        let bwd = fwd + 1;
        arcs.push(Arc {
            to: e.to.index(),
            cap: c,
            rev: bwd,
            channel: Some(e.id),
        });
        arcs.push(Arc {
            to: e.from.index(),
            cap: 0,
            rev: fwd,
            channel: None,
        });
        head[e.from.index()].push(fwd);
        head[e.to.index()].push(bwd);
    }
    let s = source.index();
    let t = sink.index();
    let mut total = 0u64;
    scratch.level.clear();
    scratch.level.resize(n, -1);
    scratch.iter.clear();
    scratch.iter.resize(n, 0);
    // Track flow sent per arc for decomposition.
    scratch.flow.clear();
    scratch.flow.resize(arcs.len(), 0);
    let level = &mut scratch.level;
    let iter = &mut scratch.iter;
    let flow = &mut scratch.flow;

    loop {
        // BFS level graph.
        level.iter_mut().for_each(|l| *l = -1);
        let q = &mut scratch.queue;
        q.clear();
        level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &ai in &head[u] {
                let a = arcs[ai];
                if a.cap > 0 && level[a.to] < 0 {
                    level[a.to] = level[u] + 1;
                    q.push_back(a.to);
                }
            }
        }
        if level[t] < 0 {
            break;
        }
        iter.iter_mut().for_each(|i| *i = 0);
        // DFS blocking flow.
        loop {
            let pushed = dfs(arcs, flow, head, level, iter, s, t, u64::MAX);
            if pushed == 0 {
                break;
            }
            total += pushed;
        }
    }

    // Cancel opposing flows on the two directions of the same channel is not
    // needed for correctness of decomposition (each arc tracks its own net
    // flow already via residual bookkeeping on `cap`).
    let paths = decompose(g, head, arcs, flow, &mut scratch.visited, s, t);
    MaxFlowResult {
        value: total,
        paths,
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    arcs: &mut [Arc],
    flow: &mut [u64],
    head: &[Vec<usize>],
    level: &[i32],
    iter: &mut [usize],
    u: usize,
    t: usize,
    limit: u64,
) -> u64 {
    if u == t {
        return limit;
    }
    while iter[u] < head[u].len() {
        let ai = head[u][iter[u]];
        let (to, cap) = (arcs[ai].to, arcs[ai].cap);
        if cap > 0 && level[to] == level[u] + 1 {
            let pushed = dfs(arcs, flow, head, level, iter, to, t, limit.min(cap));
            if pushed > 0 {
                arcs[ai].cap -= pushed;
                let rev = arcs[ai].rev;
                arcs[rev].cap += pushed;
                // Net flow bookkeeping: pushing on a reverse arc cancels
                // forward flow.
                if arcs[ai].channel.is_some() {
                    flow[ai] += pushed;
                } else {
                    flow[rev] = flow[rev].saturating_sub(pushed);
                }
                return pushed;
            }
        }
        iter[u] += 1;
    }
    0
}

/// Decomposes the per-arc net flow into source→sink paths (greedy walk).
fn decompose<G: Topology>(
    g: &G,
    head: &[Vec<usize>],
    arcs: &[Arc],
    flow: &mut [u64],
    visited: &mut Vec<bool>,
    s: usize,
    t: usize,
) -> Vec<FlowPath> {
    let mut paths = Vec::new();
    loop {
        // Walk from s following positive-flow arcs.
        let mut nodes = vec![NodeId::from_index(s)];
        let mut chans: Vec<ChannelId> = Vec::new();
        let mut arc_idxs = Vec::new();
        let mut cur = s;
        let mut bottleneck = u64::MAX;
        visited.clear();
        visited.resize(head.len(), false);
        visited[cur] = true;
        while cur != t {
            let mut advanced = false;
            for &ai in &head[cur] {
                if flow[ai] > 0 && arcs[ai].channel.is_some() && !visited[arcs[ai].to] {
                    bottleneck = bottleneck.min(flow[ai]);
                    cur = arcs[ai].to;
                    visited[cur] = true;
                    nodes.push(NodeId::from_index(cur));
                    chans.push(arcs[ai].channel.expect("checked above"));
                    arc_idxs.push(ai);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                // Remaining flow forms a cycle not reaching t (can happen
                // with opposing channel directions); drop it.
                if let Some(&ai) = arc_idxs.last() {
                    // Remove the last arc's flow to break out of the cycle.
                    flow[ai] = 0;
                }
                break;
            }
        }
        if cur != t {
            if arc_idxs.is_empty() {
                break;
            }
            continue;
        }
        for &ai in &arc_idxs {
            flow[ai] -= bottleneck;
        }
        let path = Path::new(nodes, chans);
        debug_assert!(path.validate(g).is_ok());
        paths.push(FlowPath {
            path,
            amount: bottleneck,
        });
        if paths.len() > 4 * head.len() {
            break; // safety valve against pathological loops
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn single_path_flow() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let r = max_flow(&g, n(0), n(2), |_| Some(5));
        assert_eq!(r.value, 5);
        assert_eq!(r.paths.len(), 1);
        assert_eq!(r.paths[0].amount, 5);
        assert_eq!(r.paths[0].path.nodes(), &[n(0), n(1), n(2)]);
    }

    #[test]
    fn bottleneck_limits_flow() {
        let mut g = Graph::new(3);
        let c0 = g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let r = max_flow(&g, n(0), n(2), |e| Some(if e.id == c0 { 2 } else { 10 }));
        assert_eq!(r.value, 2);
    }

    #[test]
    fn parallel_paths_sum() {
        // diamond: 0-1-3 and 0-2-3, each capacity 4.
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(3));
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(3));
        let r = max_flow(&g, n(0), n(3), |_| Some(4));
        assert_eq!(r.value, 8);
        assert_eq!(r.paths.len(), 2);
        let total: u64 = r.paths.iter().map(|p| p.amount).sum();
        assert_eq!(total, 8);
        for p in &r.paths {
            assert_eq!(p.path.source(), n(0));
            assert_eq!(p.path.target(), n(3));
        }
    }

    #[test]
    fn classic_textbook_instance() {
        // CLRS-style: capacities chosen so max flow = 23.
        // s=0, v1=1, v2=2, v3=3, v4=4, t=5
        let mut g = Graph::new(6);
        let mut caps: Vec<(u32, u32, u64)> = Vec::new();
        let add = |g: &mut Graph, a: u32, b: u32, c: u64, caps: &mut Vec<(u32, u32, u64)>| {
            g.add_edge(n(a), n(b));
            caps.push((a, b, c));
        };
        add(&mut g, 0, 1, 16, &mut caps);
        add(&mut g, 0, 2, 13, &mut caps);
        add(&mut g, 1, 3, 12, &mut caps);
        add(&mut g, 2, 1, 4, &mut caps);
        add(&mut g, 2, 4, 14, &mut caps);
        add(&mut g, 3, 2, 9, &mut caps);
        add(&mut g, 3, 5, 20, &mut caps);
        add(&mut g, 4, 3, 7, &mut caps);
        add(&mut g, 4, 5, 4, &mut caps);
        let r = max_flow(&g, n(0), n(5), |e| {
            let (a, b, c) = caps[e.id.index()];
            // capacity only in the listed direction
            (e.from == n(a) && e.to == n(b)).then_some(c)
        });
        assert_eq!(r.value, 23);
        let total: u64 = r.paths.iter().map(|p| p.amount).sum();
        assert_eq!(total, 23);
    }

    #[test]
    fn disconnected_is_zero() {
        let g = Graph::new(4);
        let r = max_flow(&g, n(0), n(3), |_| Some(10));
        assert_eq!(r.value, 0);
        assert!(r.paths.is_empty());
    }

    #[test]
    fn degenerate_endpoints() {
        let mut g = Graph::new(2);
        g.add_edge(n(0), n(1));
        assert_eq!(max_flow(&g, n(0), n(0), |_| Some(1)).value, 0);
        assert_eq!(max_flow(&g, n(0), n(9), |_| Some(1)).value, 0);
    }

    #[test]
    fn workspace_variant_matches_allocating_form() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(3));
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(3));
        let mut ws = SearchWorkspace::new();
        for _ in 0..3 {
            let fresh = max_flow(&g, n(0), n(3), |_| Some(4));
            let reused = max_flow_in(&g, &mut ws, n(0), n(3), |_| Some(4));
            assert_eq!(fresh.value, reused.value);
            assert_eq!(fresh.paths, reused.paths);
        }
        // Shrinking to a smaller graph must not trip stale residual state.
        let mut small = Graph::new(2);
        small.add_edge(n(0), n(1));
        assert_eq!(
            max_flow_in(&small, &mut ws, n(0), n(1), |_| Some(7)).value,
            7
        );
    }

    #[test]
    fn decomposition_paths_are_valid_and_sum_to_value() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..20 {
            let nn = rng.random_range(3..9usize);
            let mut g = Graph::new(nn);
            let mut caps = Vec::new();
            for a in 0..nn {
                for b in (a + 1)..nn {
                    if rng.random_bool(0.5) {
                        g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
                        caps.push(rng.random_range(1..15u64));
                    }
                }
            }
            let r = max_flow(&g, n(0), NodeId::from_index(nn - 1), |e| {
                Some(caps[e.id.index()])
            });
            let total: u64 = r.paths.iter().map(|p| p.amount).sum();
            assert_eq!(total, r.value);
            for p in &r.paths {
                p.path.validate(&g).unwrap();
                assert!(p.amount > 0);
            }
        }
    }
}
