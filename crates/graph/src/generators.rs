//! Topology generators.
//!
//! The paper generates channel graphs "by ROLL [26] based on the
//! Watts–Strogatz small-world model" (§V-A). ROLL itself is a fast
//! generation technique; the distribution is what matters, so we implement
//! Watts–Strogatz directly, plus Barabási–Albert (scale-free, for
//! ablations), Erdős–Rényi, and the star/multi-star shapes of Fig. 2.
//!
//! All generators take a caller-provided RNG so experiments are
//! reproducible from a single seed, and all guarantee a connected result
//! (stated per generator).

use rand::Rng;

use pcn_types::NodeId;

use crate::{bfs::connected_components, Graph};

/// Watts–Strogatz small-world graph WS(n, k, β).
///
/// Starts from a ring lattice where each node connects to its `k` nearest
/// neighbours (`k` even, `k < n`), then rewires each edge's far endpoint
/// with probability `beta` to a uniform random node (avoiding self-loops
/// and duplicate channels). Afterwards any disconnected component is
/// patched into the main component with one extra channel, so the result is
/// always connected.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, `n < 2`, or `beta` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use pcn_graph::watts_strogatz;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let g = watts_strogatz(100, 4, 0.3, &mut rng);
/// assert_eq!(g.node_count(), 100);
/// assert!(pcn_graph::is_connected(&g));
/// ```
pub fn watts_strogatz<R: Rng + ?Sized>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n, "k must be below n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    // Ring lattice edges as (a, b) pairs; rewire while collecting, then
    // build the CSR arrays in one O(V + E) pass — channel ids follow
    // list order, so the topology is bit-identical to incremental adds.
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * k / 2);
    let mut exists = std::collections::HashSet::new();
    for i in 0..n {
        for j in 1..=(k / 2) {
            let a = i;
            let mut b = (i + j) % n;
            if rng.random_bool(beta) {
                // Rewire the far endpoint.
                let mut tries = 0;
                loop {
                    let cand = rng.random_range(0..n);
                    let (lo, hi) = (a.min(cand), a.max(cand));
                    if cand != a && !exists.contains(&(lo, hi)) {
                        b = cand;
                        break;
                    }
                    tries += 1;
                    if tries > 4 * n {
                        break; // saturated; keep the lattice edge
                    }
                }
            }
            let (lo, hi) = (a.min(b), a.max(b));
            if lo != hi && exists.insert((lo, hi)) {
                pairs.push((NodeId::from_index(lo), NodeId::from_index(hi)));
            }
        }
    }
    let mut g = Graph::from_edges(n, &pairs);
    connect(&mut g, rng);
    g
}

/// Barabási–Albert preferential-attachment graph BA(n, m).
///
/// Begins with a clique of `m + 1` nodes; every subsequent node attaches to
/// `m` distinct existing nodes chosen proportionally to their degree.
/// Always connected by construction.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1, "m must be positive");
    assert!(n > m, "need more nodes than attachment count");
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * m);
    // Repeated-endpoint list: sampling from it is degree-proportional.
    let mut endpoints: Vec<usize> = Vec::new();
    let seed = m + 1;
    for a in 0..seed {
        for b in (a + 1)..seed {
            pairs.push((NodeId::from_index(a), NodeId::from_index(b)));
            endpoints.push(a);
            endpoints.push(b);
        }
    }
    for v in seed..n {
        // BTreeSet, not HashSet: the emitted edge order (and hence every
        // downstream channel id) follows set-iteration order, and hash
        // order varies per process even under a fixed scenario seed.
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m && guard < 100 * m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            targets.insert(t);
            guard += 1;
        }
        // Fall back to uniform fill if the degree list was too concentrated.
        while targets.len() < m {
            targets.insert(rng.random_range(0..v));
        }
        for &t in &targets {
            pairs.push((NodeId::from_index(v), NodeId::from_index(t)));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, &pairs)
}

/// Erdős–Rényi graph G(n, p), patched to be connected.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            if rng.random_bool(p) {
                pairs.push((NodeId::from_index(a), NodeId::from_index(b)));
            }
        }
    }
    let mut g = Graph::from_edges(n, &pairs);
    connect(&mut g, rng);
    g
}

/// Star graph: node 0 is the hub, all others are leaves (Fig. 2a, the
/// topology of single-PCH schemes such as TumbleBit/A2L).
pub fn star(n: usize) -> Graph {
    assert!(n >= 2, "a star needs a hub and at least one leaf");
    let pairs: Vec<(NodeId, NodeId)> = (1..n)
        .map(|leaf| (NodeId::new(0), NodeId::from_index(leaf)))
        .collect();
    Graph::from_edges(n, &pairs)
}

/// Ring (cycle) over `n ≥ 3` nodes.
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least three nodes");
    let pairs: Vec<(NodeId, NodeId)> = (0..n)
        .map(|i| (NodeId::from_index(i), NodeId::from_index((i + 1) % n)))
        .collect();
    Graph::from_edges(n, &pairs)
}

/// Complete graph over `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            pairs.push((NodeId::from_index(a), NodeId::from_index(b)));
        }
    }
    Graph::from_edges(n, &pairs)
}

/// Patches a possibly-disconnected graph by wiring each secondary component
/// to a random node of the main component.
#[allow(clippy::needless_range_loop)] // i is a node id, not just an index
fn connect<R: Rng + ?Sized>(g: &mut Graph, rng: &mut R) {
    if g.node_count() < 2 {
        return;
    }
    let (labels, count) = connected_components(g);
    if count <= 1 {
        return;
    }
    // Pick a representative of component 0's largest member as anchor pool.
    let main_label = labels[0];
    let main: Vec<usize> = (0..g.node_count())
        .filter(|&i| labels[i] == main_label)
        .collect();
    let mut done = std::collections::HashSet::new();
    done.insert(main_label);
    for i in 0..g.node_count() {
        if done.insert(labels[i]) {
            let anchor = main[rng.random_range(0..main.len())];
            g.add_edge(NodeId::from_index(i), NodeId::from_index(anchor));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{average_degree, is_connected};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ws_basic_shape() {
        let mut rng = StdRng::seed_from_u64(42);
        let g = watts_strogatz(100, 6, 0.2, &mut rng);
        assert_eq!(g.node_count(), 100);
        assert!(is_connected(&g));
        // Ring lattice has n*k/2 edges; rewiring preserves the count, the
        // connectivity patch may add a few.
        assert!(
            g.edge_count() >= 295 && g.edge_count() <= 310,
            "{}",
            g.edge_count()
        );
        assert!((average_degree(&g) - 6.0).abs() < 0.5);
    }

    #[test]
    fn ws_beta_zero_is_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(10, 4, 0.0, &mut rng);
        // Every node has exactly degree 4.
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
        assert_eq!(g.edge_count(), 20);
    }

    #[test]
    fn ws_deterministic_per_seed() {
        let g1 = watts_strogatz(50, 4, 0.5, &mut StdRng::seed_from_u64(9));
        let g2 = watts_strogatz(50, 4, 0.5, &mut StdRng::seed_from_u64(9));
        assert_eq!(g1.edge_count(), g2.edge_count());
        let e1: Vec<_> = g1.edges().map(|c| g1.endpoints(c).unwrap()).collect();
        let e2: Vec<_> = g2.edges().map(|c| g2.endpoints(c).unwrap()).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn ws_odd_k_panics() {
        watts_strogatz(10, 3, 0.1, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn ba_scale_free_hubs() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(300, 2, &mut rng);
        assert_eq!(g.node_count(), 300);
        assert!(is_connected(&g));
        // Scale-free: max degree far above the mean.
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        assert!(max_deg as f64 > 3.0 * average_degree(&g), "max {max_deg}");
    }

    #[test]
    fn ba_edge_order_is_canonical() {
        // Regression for the HashSet→BTreeSet fix: each new node's
        // attachment edges must be emitted in ascending target order, so
        // channel ids are a pure function of the seed rather than of the
        // process's hasher state. (Both orders pass a same-process
        // determinism check; only the canonical one survives across
        // processes.)
        let mut rng = StdRng::seed_from_u64(7);
        let g = barabasi_albert(120, 3, &mut rng);
        let edges: Vec<_> = g.edges().map(|c| g.endpoints(c).unwrap()).collect();
        // Edges for node v (v >= seed nodes) form one contiguous run of
        // (v, t) pairs; within a run the targets must strictly ascend.
        for w in edges.windows(2) {
            let ((a1, b1), (a2, b2)) = (w[0], w[1]);
            if a1 == a2 && a1.index() >= 4 {
                assert!(b1 < b2, "targets of {a1:?} not ascending: {b1:?} !< {b2:?}");
            }
        }
    }

    #[test]
    fn er_connected_patch() {
        let mut rng = StdRng::seed_from_u64(4);
        // p low enough that raw G(n,p) would often be disconnected.
        let g = erdos_renyi(60, 0.02, &mut rng);
        assert!(is_connected(&g));
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.edge_count(), 9);
        assert_eq!(g.degree(NodeId::new(0)), 9);
        for i in 1..10 {
            assert_eq!(g.degree(NodeId::from_index(i)), 1);
        }
    }

    #[test]
    fn ring_and_complete() {
        let r = ring(5);
        assert_eq!(r.edge_count(), 5);
        assert!(is_connected(&r));
        let c = complete(5);
        assert_eq!(c.edge_count(), 10);
        for v in c.nodes() {
            assert_eq!(c.degree(v), 4);
        }
    }
}
