//! Channel dependency footprints for search computations.
//!
//! A path search reads the graph structure plus, through its cost/width
//! closure, the state of some subset of channels. That subset — the
//! *footprint* — is exactly what the computation's result can depend on
//! beyond topology: the searches in this crate only consult edge state
//! through their closure, and every edge whose state could have altered
//! the outcome is consulted (an edge that was never queried hangs off a
//! node the search never reached, and reachability is decided purely by
//! queried edges). A caller that wraps its closure in
//! [`Footprint::record`] therefore obtains a sound invalidation scope:
//! as long as the topology and every footprint channel are unchanged,
//! rerunning the search returns a bit-identical result.
//!
//! The routing layer's epoch-versioned path cache uses this to keep
//! live-balance plan entries fresh across funds movements on *unrelated*
//! channels, instead of invalidating on any movement anywhere.

use pcn_types::ChannelId;

/// A set of channels a computation read, recorded during the search.
///
/// Recording is O(1) and idempotent per channel (a dense mark table
/// backs the insertion-ordered list), so it is cheap enough to wrap the
/// innermost cost closure of a Dijkstra. Reuse one `Footprint` across
/// searches via [`Footprint::clear`] to stay allocation-free when warm.
///
/// # Examples
///
/// ```
/// use pcn_graph::{Footprint, Graph};
/// use pcn_types::NodeId;
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// let mut fp = Footprint::new();
/// let (_, path) = g
///     .shortest_path(NodeId::new(0), NodeId::new(2), |e| {
///         fp.record(e.id);
///         Some(1.0)
///     })
///     .expect("connected");
/// assert_eq!(path.hops(), 2);
/// assert_eq!(fp.channels().len(), 2, "both channels were consulted");
/// ```
#[derive(Debug, Default)]
pub struct Footprint {
    /// Recorded channels in first-touch order.
    seen: Vec<ChannelId>,
    /// Dense membership marks, indexed by channel id.
    marks: Vec<bool>,
}

impl Footprint {
    /// Creates an empty footprint.
    pub fn new() -> Footprint {
        Footprint::default()
    }

    /// Empties the footprint, keeping its buffers for reuse.
    pub fn clear(&mut self) {
        for &ch in &self.seen {
            self.marks[ch.index()] = false;
        }
        self.seen.clear();
    }

    /// Records that the computation consulted `channel`. Idempotent.
    pub fn record(&mut self, channel: ChannelId) {
        let i = channel.index();
        if i >= self.marks.len() {
            self.marks.resize(i + 1, false);
        }
        if !self.marks[i] {
            self.marks[i] = true;
            self.seen.push(channel);
        }
    }

    /// The recorded channels, in first-touch order (deterministic: search
    /// order is deterministic).
    pub fn channels(&self) -> &[ChannelId] {
        &self.seen
    }

    /// Number of distinct channels recorded.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Whether `channel` was recorded.
    pub fn contains(&self, channel: ChannelId) -> bool {
        self.marks.get(channel.index()).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch(i: u32) -> ChannelId {
        ChannelId::new(i)
    }

    #[test]
    fn records_each_channel_once_in_touch_order() {
        let mut fp = Footprint::new();
        fp.record(ch(5));
        fp.record(ch(2));
        fp.record(ch(5));
        fp.record(ch(2));
        fp.record(ch(9));
        assert_eq!(fp.channels(), &[ch(5), ch(2), ch(9)]);
        assert_eq!(fp.len(), 3);
        assert!(fp.contains(ch(2)));
        assert!(!fp.contains(ch(3)));
        assert!(!fp.contains(ch(1000)));
    }

    #[test]
    fn clear_resets_and_buffers_survive() {
        let mut fp = Footprint::new();
        fp.record(ch(7));
        fp.record(ch(1));
        fp.clear();
        assert!(fp.is_empty());
        assert!(!fp.contains(ch(7)));
        fp.record(ch(7));
        assert_eq!(fp.channels(), &[ch(7)]);
    }

    #[test]
    fn search_footprint_covers_consulted_edges_only() {
        use pcn_types::NodeId;
        // 0-1-2 line plus an unreachable island 3-4: the island's channel
        // can never enter a 0→2 search footprint.
        let mut g = crate::Graph::new(5);
        let a = g.add_edge(NodeId::new(0), NodeId::new(1));
        let b = g.add_edge(NodeId::new(1), NodeId::new(2));
        let island = g.add_edge(NodeId::new(3), NodeId::new(4));
        let mut fp = Footprint::new();
        let got = g.shortest_path(NodeId::new(0), NodeId::new(2), |e| {
            fp.record(e.id);
            Some(1.0)
        });
        assert!(got.is_some());
        assert!(fp.contains(a) && fp.contains(b));
        assert!(!fp.contains(island), "unreached edges are never consulted");
    }
}
