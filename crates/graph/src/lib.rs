//! Graph substrate for payment channel networks.
//!
//! The paper's system depends on a stack of graph machinery: the PCN itself
//! is a graph of payment channels; hub placement needs all-pairs hop counts;
//! the routing protocol needs k-shortest (KSP), edge-disjoint shortest (EDS)
//! and edge-disjoint widest (EDW) paths (Table II); the Flash baseline needs
//! max-flow; the evaluation topology is a Watts–Strogatz small-world graph
//! generated in the spirit of ROLL \[26\]. This crate implements all of it
//! from scratch.
//!
//! The graph is an undirected multigraph of *channels*; algorithms see it
//! through directed [`EdgeRef`]s so that per-direction costs/capacities
//! (channel balances!) can differ. Costs are supplied by closures, which
//! lets the routing layer price edges off live channel state without the
//! graph crate knowing about balances.
//!
//! Three cross-cutting facilities support the routing layer's epoch-
//! versioned path cache:
//!
//! * [`SearchWorkspace`] — reusable search buffers. Every algorithm has
//!   a `*_in` variant that borrows a workspace and runs allocation-free
//!   when called repeatedly, returning bit-identical results to the
//!   allocating form.
//! * [`Graph::topology_epoch`] — a monotone counter bumped on every
//!   structural mutation, the topology half of the cache's
//!   epoch-invalidation contract.
//! * [`Footprint`] — a recorder a caller threads through its cost/width
//!   closure to capture exactly which channels a search consulted, the
//!   dependency set that scopes live-state cache invalidation.
//!
//! # Memory layout
//!
//! [`Graph`] stores adjacency in **compressed sparse row** (CSR) form: one
//! contiguous `Vec` of 8-byte entries (`{ tag: u32, to: NodeId }` — channel
//! id plus neighbour) and a `row_offsets: Vec<u32>` of length `V + 1`
//! marking each node's slice. Neighbour iteration is a linear scan of one
//! cache-dense slice; the budget is **8 bytes per directed adjacency
//! entry** (16 per undirected channel) plus `4(V + 1)` offset bytes,
//! reported live by [`Graph::adjacency_stats`].
//!
//! Churn never rebuilds the CSR arrays in place:
//!
//! * **Close** flips a skip bit in the entry's own tag (a tombstone);
//!   surviving entries keep their relative order, exactly as a `retain`
//!   on a per-node `Vec` would.
//! * **Open/reopen** appends to a small per-node *delta overlay* that is
//!   iterated after the CSR row — exactly where a `push` would land.
//!   A reopen also kills the old tombstoned entry so the channel is never
//!   seen twice. Whether a node has overlay entries is encoded as a
//!   stolen bit in its row offset, so iterating an overlay-free node —
//!   the steady state — reads nothing but the (L2-resident) offset table
//!   and the CSR row itself, never the overlay's pointer spine.
//! * When tombstones plus overlay entries cross a deterministic watermark
//!   (1/8 of the CSR length, with a floor that exempts small graphs),
//!   [`Graph`] **compacts**: one O(V + E) rebuild that drops tombstones,
//!   merges the overlay in visible order, and bumps
//!   [`Graph::topology_epoch`] exactly once. Visible neighbour order is
//!   preserved verbatim, so searches before and after compaction are
//!   bit-identical.
//!
//! The [`Topology`] trait abstracts the adjacency so every search family
//! here also runs on [`ReferenceGraph`], the pre-CSR `Vec<Vec<…>>` layout
//! kept as an executable spec for equivalence proptests and honest
//! same-build benchmarks.
//!
//! # Search acceleration
//!
//! Point-to-point queries have goal-directed variants that return
//! **bit-identical** paths to the plain searches, so callers can toggle
//! them freely without changing a single result:
//!
//! * [`shortest_path_bidir_in`] — bidirectional Dijkstra: an alternating
//!   forward/backward probe phase sizes two half-radius balls, then a
//!   canonical A* over the backward ball's exact distances produces the
//!   answer. Works on any [`Topology`] and any nonnegative cost closure.
//! * [`shortest_path_accel_in`] — adds **ALT landmark lower bounds**
//!   from the workspace's [`LandmarkTable`]: hop-metric rows from a
//!   deterministic farthest-point landmark set give the admissible
//!   triangle-inequality bound `max_L |d(L,u) − d(L,t)|`, valid for the
//!   unit-cost searches the routing layer runs (every usable edge must
//!   cost ≥ 1; stale tables silently degrade to pure bidirectional).
//! * [`k_shortest_paths_accel_in`] / [`edge_disjoint_shortest_paths_accel_in`]
//!   — the Yen and greedy-EDS loops with every inner single-pair search
//!   goal-directed.
//! * [`AccelBounds`] — which lower bounds a search may prune with.
//!   `Full` (backward probe ball + ALT) is fastest; `TopologyOnly` (ALT
//!   alone) restricts pruning to funds-independent bounds so the set of
//!   channels the cost closure is consulted on stays a **sufficient
//!   dependency footprint** — required whenever the computation records
//!   one for scoped cache invalidation, because the probe ball is priced
//!   under the current funds configuration and would otherwise hide
//!   channels a later funds move can flip.
//! * [`shortest_path_two_trees_in`] — two full trees (e.g. one from a
//!   payment's source, one from its destination) in one call, batching
//!   what would otherwise be `2·k` single-pair searches.
//!
//! Bit-identity rests on a canonical tie-break, spelled out in the
//! `accel` module docs: the plain search's final parent for any node on
//! the returned chain is the optimal predecessor with the smallest
//! `(dist, node id)` (carrying the first channel in its adjacency order
//! achieving the minimum), and the A* phase enforces exactly that parent
//! on equal-distance relaxations instead of relying on pop order. The
//! [`LandmarkTable`] follows the routing path cache's staleness
//! discipline: rows are keyed by [`Graph::topology_epoch`] and rebuilt
//! lazily on mismatch, so a stale table can never serve a search.
//!
//! # Examples
//!
//! ```
//! use pcn_graph::Graph;
//! use pcn_types::NodeId;
//!
//! let mut g = Graph::new(4);
//! g.add_edge(NodeId::new(0), NodeId::new(1));
//! g.add_edge(NodeId::new(1), NodeId::new(2));
//! g.add_edge(NodeId::new(2), NodeId::new(3));
//! g.add_edge(NodeId::new(0), NodeId::new(3));
//!
//! let (cost, path) = g
//!     .shortest_path(NodeId::new(0), NodeId::new(2), |_| Some(1.0))
//!     .expect("connected");
//! assert_eq!(cost, 2.0);
//! assert_eq!(path.hops(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accel;
mod bfs;
mod dijkstra;
mod disjoint;
mod footprint;
mod generators;
mod graph;
mod maxflow;
mod metrics;
mod path;
mod reference;
mod topology;
mod widest;
mod workspace;
mod yen;

pub use accel::{
    edge_disjoint_shortest_paths_accel_in, k_shortest_paths_accel_in, shortest_path_accel_in,
    shortest_path_bidir_in, shortest_path_two_trees_in, AccelBounds, LandmarkTable,
};
pub use bfs::{bfs_hops, connected_components, is_connected};
pub use dijkstra::{
    shortest_path, shortest_path_in, shortest_path_tree, shortest_path_tree_in, ShortestPathTree,
};
pub use disjoint::{
    edge_disjoint_shortest_paths, edge_disjoint_shortest_paths_in, edge_disjoint_widest_paths,
    edge_disjoint_widest_paths_in,
};
pub use footprint::Footprint;
pub use generators::{barabasi_albert, complete, erdos_renyi, ring, star, watts_strogatz};
pub use graph::{AdjacencyStats, EdgeRef, EdgesOf, Graph};
pub use maxflow::{max_flow, max_flow_in, FlowPath, MaxFlowResult};
pub use metrics::{average_degree, clustering_coefficient, degree_histogram, GraphMetrics};
pub use path::Path;
pub use reference::ReferenceGraph;
pub use topology::Topology;
pub use widest::{widest_path, widest_path_in};
pub use workspace::SearchWorkspace;
pub use yen::{k_shortest_paths, k_shortest_paths_in, k_shortest_paths_until_in};

pub(crate) mod cost {
    /// Total-order wrapper for `f64` costs inside priority queues.
    ///
    /// NaN costs are rejected at the call boundary (cost closures returning
    /// NaN are treated as "edge unusable"), so `total_cmp` is safe here.
    #[derive(Clone, Copy, PartialEq, Debug)]
    pub struct Cost(pub f64);

    impl Eq for Cost {}

    impl PartialOrd for Cost {
        fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    impl Ord for Cost {
        fn cmp(&self, other: &Self) -> core::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
}
