//! Structural graph metrics used to sanity-check generated topologies.
//!
//! [`GraphMetrics::compute`] is bounded: when `samples` is below the node
//! count, both the avg-hop BFS sources *and* the clustering nodes are a
//! deterministic sample drawn from a seeded internal RNG stream, so a
//! 100k-node world summarizes in milliseconds. With `samples >= nodes`
//! everything is exact, as before.

use pcn_types::NodeId;

use crate::{bfs_hops, Graph};

/// Default seed of the metric-sampling RNG stream; see
/// [`GraphMetrics::compute_seeded`].
const DEFAULT_METRICS_SEED: u64 = 0x05EE_D0D0_u64;

/// Neighbour-set cap for *sampled* local clustering: hubs with more
/// neighbours are estimated from a deterministic subsample (the exact
/// local coefficient is quadratic in degree).
const CLUSTER_NEIGHBOR_CAP: usize = 64;

/// Deterministic splitmix64 stream used for metric sampling. Private to
/// this module: metric sampling must never perturb (or depend on) the
/// simulation's RNG forks.
struct SampleRng(u64);

impl SampleRng {
    fn new(seed: u64) -> Self {
        SampleRng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// `k` distinct indices out of `0..n`, deterministically (partial
/// Fisher–Yates). `k` must be ≤ `n`.
fn sample_distinct(n: usize, k: usize, rng: &mut SampleRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = i + rng.below(n - i);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

/// Average node degree (`2E / V`); zero for an empty graph.
pub fn average_degree(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / g.node_count() as f64
    }
}

/// Degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Local clustering coefficient of `v`: link density among its distinct
/// neighbours. `None` when fewer than two. With a `rng`, neighbour sets
/// beyond [`CLUSTER_NEIGHBOR_CAP`] are estimated from a deterministic
/// subsample.
fn local_clustering(g: &Graph, v: NodeId, rng: Option<&mut SampleRng>) -> Option<f64> {
    let mut nbrs: Vec<NodeId> = g.neighbors(v).collect();
    nbrs.sort();
    nbrs.dedup();
    if nbrs.len() < 2 {
        return None;
    }
    if let Some(rng) = rng {
        if nbrs.len() > CLUSTER_NEIGHBOR_CAP {
            for i in 0..CLUSTER_NEIGHBOR_CAP {
                let j = i + rng.below(nbrs.len() - i);
                nbrs.swap(i, j);
            }
            nbrs.truncate(CLUSTER_NEIGHBOR_CAP);
            nbrs.sort();
        }
    }
    let mut links = 0usize;
    for i in 0..nbrs.len() {
        for j in (i + 1)..nbrs.len() {
            if g.has_edge_between(nbrs[i], nbrs[j]) {
                links += 1;
            }
        }
    }
    let possible = nbrs.len() * (nbrs.len() - 1) / 2;
    Some(links as f64 / possible as f64)
}

/// Global clustering coefficient (average of local coefficients over nodes
/// of degree ≥ 2). Small-world graphs score high here relative to random
/// graphs of the same density. Exact — O(Σ deg²); prefer the sampled
/// estimate inside [`GraphMetrics::compute`] for large worlds.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for v in g.nodes() {
        if let Some(c) = local_clustering(g, v, None) {
            total += c;
            counted += 1;
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Summary statistics for a topology.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphMetrics {
    /// Node count.
    pub nodes: usize,
    /// Channel count.
    pub edges: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Global clustering coefficient (sampled estimate when `samples`
    /// is below the node count).
    pub clustering: f64,
    /// Average shortest-path hops over sampled source nodes (connected
    /// pairs only).
    pub avg_path_hops: f64,
    /// Largest hop distance seen from the sampled sources.
    pub diameter_lower_bound: u32,
}

impl GraphMetrics {
    /// Computes metrics with the default sampling seed; see
    /// [`GraphMetrics::compute_seeded`]. Exact (all-pairs BFS, full
    /// clustering) when `samples >= nodes`.
    pub fn compute(g: &Graph, samples: usize) -> GraphMetrics {
        GraphMetrics::compute_seeded(g, samples, DEFAULT_METRICS_SEED)
    }

    /// Computes metrics, bounded by `samples`: when `samples` is below
    /// the node count, the BFS sources and the clustering nodes are each
    /// a distinct deterministic sample drawn from a splitmix64 stream
    /// seeded with `seed` — the cost is O(samples · (V + E)) regardless
    /// of world size, and the result is a pure function of
    /// `(graph, samples, seed)`. With `samples >= nodes` everything is
    /// exact and `seed` is unused.
    pub fn compute_seeded(g: &Graph, samples: usize, seed: u64) -> GraphMetrics {
        let n = g.node_count();
        let exact = samples >= n;
        let mut rng = SampleRng::new(seed);
        let sources: Vec<usize> = if exact {
            (0..n).collect()
        } else {
            sample_distinct(n, samples, &mut rng)
        };
        let mut sum = 0u64;
        let mut pairs = 0u64;
        let mut diameter = 0u32;
        for &s in &sources {
            let hops = bfs_hops(g, NodeId::from_index(s));
            for (i, &h) in hops.iter().enumerate() {
                if i != s && h != u32::MAX {
                    sum += u64::from(h);
                    pairs += 1;
                    diameter = diameter.max(h);
                }
            }
        }
        let clustering = if exact {
            clustering_coefficient(g)
        } else {
            let mut total = 0.0;
            let mut counted = 0usize;
            for v in sample_distinct(n, samples, &mut rng) {
                if let Some(c) = local_clustering(g, NodeId::from_index(v), Some(&mut rng)) {
                    total += c;
                    counted += 1;
                }
            }
            if counted == 0 {
                0.0
            } else {
                total / counted as f64
            }
        };
        GraphMetrics {
            nodes: n,
            edges: g.edge_count(),
            avg_degree: average_degree(g),
            clustering,
            avg_path_hops: if pairs == 0 {
                0.0
            } else {
                sum as f64 / pairs as f64
            },
            diameter_lower_bound: diameter,
        }
    }
}

impl core::fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "nodes={} edges={} avg_degree={:.2} clustering={:.3} avg_hops={:.2} diam≥{}",
            self.nodes,
            self.edges,
            self.avg_degree,
            self.clustering,
            self.avg_path_hops,
            self.diameter_lower_bound
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{complete, ring, star, watts_strogatz};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_stats() {
        let g = star(5);
        assert_eq!(average_degree(&g), 2.0 * 4.0 / 5.0);
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 4);
        assert_eq!(hist[4], 1);
    }

    #[test]
    fn clustering_extremes() {
        assert_eq!(clustering_coefficient(&complete(5)), 1.0);
        assert_eq!(clustering_coefficient(&star(6)), 0.0);
        assert_eq!(clustering_coefficient(&Graph::new(3)), 0.0);
    }

    #[test]
    fn ring_metrics() {
        let m = GraphMetrics::compute(&ring(6), usize::MAX);
        assert_eq!(m.nodes, 6);
        assert_eq!(m.edges, 6);
        assert_eq!(m.diameter_lower_bound, 3);
        // ring of 6: distances 1,1,2,2,3 → avg 1.8
        assert!((m.avg_path_hops - 1.8).abs() < 1e-9);
    }

    #[test]
    fn small_world_properties() {
        let mut rng = StdRng::seed_from_u64(12);
        let ws = watts_strogatz(200, 8, 0.1, &mut rng);
        let m = GraphMetrics::compute(&ws, 50);
        // Small world: high clustering, short paths.
        assert!(m.clustering > 0.2, "clustering {}", m.clustering);
        assert!(m.avg_path_hops < 6.0, "hops {}", m.avg_path_hops);
        let shown = m.to_string();
        assert!(shown.contains("nodes=200"));
    }

    #[test]
    fn sampled_metrics_are_deterministic_and_close_to_exact() {
        let mut rng = StdRng::seed_from_u64(12);
        let ws = watts_strogatz(300, 8, 0.1, &mut rng);
        let a = GraphMetrics::compute(&ws, 40);
        let b = GraphMetrics::compute(&ws, 40);
        assert_eq!(a, b, "sampling is a pure function of (graph, samples)");
        let c = GraphMetrics::compute_seeded(&ws, 40, 99);
        assert_ne!(
            a.avg_path_hops, c.avg_path_hops,
            "a different seed draws different sources"
        );
        let exact = GraphMetrics::compute(&ws, usize::MAX);
        assert!((a.clustering - exact.clustering).abs() < 0.2);
        assert!((a.avg_path_hops - exact.avg_path_hops).abs() < 1.0);
    }

    #[test]
    fn empty_graph_metrics() {
        let m = GraphMetrics::compute(&Graph::new(0), 10);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.avg_path_hops, 0.0);
    }
}
