//! Structural graph metrics used to sanity-check generated topologies.

use pcn_types::NodeId;

use crate::{bfs_hops, Graph};

/// Average node degree (`2E / V`); zero for an empty graph.
pub fn average_degree(g: &Graph) -> f64 {
    if g.node_count() == 0 {
        0.0
    } else {
        2.0 * g.edge_count() as f64 / g.node_count() as f64
    }
}

/// Degree histogram: `hist[d]` = number of nodes of degree `d`.
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for v in g.nodes() {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Global clustering coefficient (average of local coefficients over nodes
/// of degree ≥ 2). Small-world graphs score high here relative to random
/// graphs of the same density.
pub fn clustering_coefficient(g: &Graph) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for v in g.nodes() {
        let nbrs: Vec<NodeId> = {
            let mut u: Vec<NodeId> = g.neighbors(v).collect();
            u.sort();
            u.dedup();
            u
        };
        if nbrs.len() < 2 {
            continue;
        }
        let mut links = 0usize;
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                if g.has_edge_between(nbrs[i], nbrs[j]) {
                    links += 1;
                }
            }
        }
        let possible = nbrs.len() * (nbrs.len() - 1) / 2;
        total += links as f64 / possible as f64;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Summary statistics for a topology.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphMetrics {
    /// Node count.
    pub nodes: usize,
    /// Channel count.
    pub edges: usize,
    /// Average degree.
    pub avg_degree: f64,
    /// Global clustering coefficient.
    pub clustering: f64,
    /// Average shortest-path hops over sampled source nodes (connected
    /// pairs only).
    pub avg_path_hops: f64,
    /// Largest hop distance seen from the sampled sources.
    pub diameter_lower_bound: u32,
}

impl GraphMetrics {
    /// Computes metrics, running BFS from up to `samples` evenly spaced
    /// source nodes (full all-pairs when `samples >= nodes`).
    pub fn compute(g: &Graph, samples: usize) -> GraphMetrics {
        let n = g.node_count();
        let sources: Vec<usize> = if samples >= n || n == 0 {
            (0..n).collect()
        } else {
            let step = n / samples;
            (0..samples).map(|i| i * step).collect()
        };
        let mut sum = 0u64;
        let mut pairs = 0u64;
        let mut diameter = 0u32;
        for &s in &sources {
            let hops = bfs_hops(g, NodeId::from_index(s));
            for (i, &h) in hops.iter().enumerate() {
                if i != s && h != u32::MAX {
                    sum += u64::from(h);
                    pairs += 1;
                    diameter = diameter.max(h);
                }
            }
        }
        GraphMetrics {
            nodes: n,
            edges: g.edge_count(),
            avg_degree: average_degree(g),
            clustering: clustering_coefficient(g),
            avg_path_hops: if pairs == 0 {
                0.0
            } else {
                sum as f64 / pairs as f64
            },
            diameter_lower_bound: diameter,
        }
    }
}

impl core::fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "nodes={} edges={} avg_degree={:.2} clustering={:.3} avg_hops={:.2} diam≥{}",
            self.nodes,
            self.edges,
            self.avg_degree,
            self.clustering,
            self.avg_path_hops,
            self.diameter_lower_bound
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{complete, ring, star, watts_strogatz};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn degree_stats() {
        let g = star(5);
        assert_eq!(average_degree(&g), 2.0 * 4.0 / 5.0);
        let hist = degree_histogram(&g);
        assert_eq!(hist[1], 4);
        assert_eq!(hist[4], 1);
    }

    #[test]
    fn clustering_extremes() {
        assert_eq!(clustering_coefficient(&complete(5)), 1.0);
        assert_eq!(clustering_coefficient(&star(6)), 0.0);
        assert_eq!(clustering_coefficient(&Graph::new(3)), 0.0);
    }

    #[test]
    fn ring_metrics() {
        let m = GraphMetrics::compute(&ring(6), usize::MAX);
        assert_eq!(m.nodes, 6);
        assert_eq!(m.edges, 6);
        assert_eq!(m.diameter_lower_bound, 3);
        // ring of 6: distances 1,1,2,2,3 → avg 1.8
        assert!((m.avg_path_hops - 1.8).abs() < 1e-9);
    }

    #[test]
    fn small_world_properties() {
        let mut rng = StdRng::seed_from_u64(12);
        let ws = watts_strogatz(200, 8, 0.1, &mut rng);
        let m = GraphMetrics::compute(&ws, 50);
        // Small world: high clustering, short paths.
        assert!(m.clustering > 0.2, "clustering {}", m.clustering);
        assert!(m.avg_path_hops < 6.0, "hops {}", m.avg_path_hops);
        let shown = m.to_string();
        assert!(shown.contains("nodes=200"));
    }

    #[test]
    fn empty_graph_metrics() {
        let m = GraphMetrics::compute(&Graph::new(0), 10);
        assert_eq!(m.nodes, 0);
        assert_eq!(m.avg_path_hops, 0.0);
    }
}
