//! Breadth-first search utilities: hop counts and connectivity.

use std::collections::VecDeque;

use pcn_types::NodeId;

use crate::Topology;

/// Hop distance (unweighted shortest path length) from `from` to every node.
///
/// Unreachable nodes get `u32::MAX`. The placement cost model uses these hop
/// counts for ζ, δ and ε (§V-A sets them proportional to `hops`).
///
/// The traversal is level-synchronous: each frontier is materialized in
/// ascending node-id order from a discovery bitmap before it is expanded.
/// Hop counts are level distances, so the result is identical to a queue
/// BFS — but expanding a sorted frontier walks the adjacency rows in
/// ascending address order, which a CSR layout turns into near-sequential
/// streaming instead of one random fetch per visited node.
///
/// # Examples
///
/// ```
/// use pcn_graph::{bfs_hops, Graph};
/// use pcn_types::NodeId;
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// let hops = bfs_hops(&g, NodeId::new(0));
/// assert_eq!(hops, vec![0, 1, 2]);
/// ```
pub fn bfs_hops<G: Topology>(g: &G, from: NodeId) -> Vec<u32> {
    let n = g.node_count();
    let mut hops = vec![u32::MAX; n];
    if from.index() >= n {
        return hops;
    }
    hops[from.index()] = 0;
    let mut frontier = vec![from];
    let mut discovered = vec![0u64; n.div_ceil(64)];
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        for &u in &frontier {
            for e in g.out_edges(u) {
                let v = e.to.index();
                if hops[v] == u32::MAX {
                    hops[v] = depth;
                    discovered[v / 64] |= 1 << (v % 64);
                }
            }
        }
        frontier.clear();
        for (word, bits) in discovered.iter_mut().enumerate() {
            let mut b = std::mem::take(bits);
            while b != 0 {
                let lane = b.trailing_zeros() as usize;
                frontier.push(NodeId::from_index(word * 64 + lane));
                b &= b - 1;
            }
        }
    }
    hops
}

/// Partitions the nodes into connected components.
///
/// Returns a component label per node (labels are dense, starting at 0) and
/// the number of components.
pub fn connected_components<G: Topology>(g: &G) -> (Vec<usize>, usize) {
    let n = g.node_count();
    let mut label = vec![usize::MAX; n];
    let mut count = 0;
    for start in 0..n {
        if label[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        label[start] = count;
        queue.push_back(NodeId::from_index(start));
        while let Some(u) = queue.pop_front() {
            for e in g.out_edges(u) {
                let v = e.to;
                if label[v.index()] == usize::MAX {
                    label[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (label, count)
}

/// Whether the graph is connected (vacuously true for ≤ 1 node).
pub fn is_connected<G: Topology>(g: &G) -> bool {
    g.node_count() <= 1 || connected_components(g).1 == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn hops_on_a_cycle() {
        let mut g = Graph::new(5);
        for i in 0..5 {
            g.add_edge(NodeId::from_index(i), NodeId::from_index((i + 1) % 5));
        }
        let hops = bfs_hops(&g, n(0));
        assert_eq!(hops, vec![0, 1, 2, 2, 1]);
    }

    #[test]
    fn unreachable_is_max() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(2), n(3));
        let hops = bfs_hops(&g, n(0));
        assert_eq!(hops[1], 1);
        assert_eq!(hops[2], u32::MAX);
        assert_eq!(hops[3], u32::MAX);
    }

    #[test]
    fn out_of_range_source() {
        let g = Graph::new(2);
        let hops = bfs_hops(&g, n(9));
        assert!(hops.iter().all(|&h| h == u32::MAX));
    }

    #[test]
    fn components() {
        let mut g = Graph::new(5);
        g.add_edge(n(0), n(1));
        g.add_edge(n(2), n(3));
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn connected_graph() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        assert!(is_connected(&g));
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
    }
}
