//! Node/channel path representation.

use pcn_types::{ChannelId, NodeId};

use crate::Topology;

/// A walk through the graph: `nodes[i] → nodes[i+1]` over `channels[i]`.
///
/// Invariant: `nodes.len() == channels.len() + 1` and every channel connects
/// the adjacent node pair (checked by [`Path::validate`] and in debug
/// assertions at construction).
///
/// # Examples
///
/// ```
/// use pcn_graph::{Graph, Path};
/// use pcn_types::NodeId;
///
/// let mut g = Graph::new(3);
/// let c0 = g.add_edge(NodeId::new(0), NodeId::new(1));
/// let c1 = g.add_edge(NodeId::new(1), NodeId::new(2));
/// let p = Path::new(vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)], vec![c0, c1]);
/// assert!(p.validate(&g).is_ok());
/// assert_eq!(p.hops(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
    channels: Vec<ChannelId>,
}

impl Path {
    /// Builds a path from its node sequence and the channels between them.
    ///
    /// # Panics
    ///
    /// Panics if `nodes.len() != channels.len() + 1` or `nodes` is empty.
    pub fn new(nodes: Vec<NodeId>, channels: Vec<ChannelId>) -> Self {
        assert!(!nodes.is_empty(), "path must contain at least one node");
        assert_eq!(
            nodes.len(),
            channels.len() + 1,
            "node/channel length mismatch"
        );
        Path { nodes, channels }
    }

    /// A zero-hop path consisting of a single node.
    pub fn trivial(node: NodeId) -> Self {
        Path {
            nodes: vec![node],
            channels: Vec::new(),
        }
    }

    /// First node of the path.
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the path.
    pub fn target(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// Number of hops (channels traversed).
    pub fn hops(&self) -> usize {
        self.channels.len()
    }

    /// Node sequence.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Channel sequence.
    pub fn channels(&self) -> &[ChannelId] {
        &self.channels
    }

    /// Iterates over `(from, channel, to)` triples along the path.
    pub fn hops_iter(&self) -> impl Iterator<Item = (NodeId, ChannelId, NodeId)> + '_ {
        self.channels
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.nodes[i], c, self.nodes[i + 1]))
    }

    /// Whether the path visits any node twice.
    pub fn has_node_cycle(&self) -> bool {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        self.nodes.iter().any(|n| !seen.insert(*n))
    }

    /// Checks the path against a graph: every channel must exist and connect
    /// the adjacent node pair.
    ///
    /// # Errors
    ///
    /// Returns the underlying graph error for the first inconsistent hop.
    pub fn validate<G: Topology>(&self, g: &G) -> pcn_types::Result<()> {
        for (from, ch, to) in self.hops_iter() {
            let (a, b) = g.endpoints(ch)?;
            if !((a == from && b == to) || (a == to && b == from)) {
                return Err(pcn_types::PcnError::UnknownChannel(ch));
            }
        }
        Ok(())
    }

    /// The prefix of this path ending at node index `i` (inclusive).
    pub(crate) fn prefix(&self, i: usize) -> Path {
        Path {
            nodes: self.nodes[..=i].to_vec(),
            channels: self.channels[..i].to_vec(),
        }
    }

    /// Concatenates `self` with `other`, which must start where `self` ends.
    ///
    /// # Panics
    ///
    /// Panics if `other.source() != self.target()`.
    pub fn join(mut self, other: Path) -> Path {
        assert_eq!(self.target(), other.source(), "paths do not meet");
        self.nodes.extend_from_slice(&other.nodes[1..]);
        self.channels.extend_from_slice(&other.channels);
        self
    }

    /// The same walk traversed target-to-source. Channels are undirected,
    /// so the reverse of a valid path is a valid path; the goal-directed
    /// planner uses this to turn a canonical `dst → landmark` leg into
    /// the `landmark → dst` leg of a joined route.
    pub fn reversed(mut self) -> Path {
        self.nodes.reverse();
        self.channels.reverse();
        self
    }
}

impl core::fmt::Debug for Path {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Path[")?;
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, " -{}-> ", self.channels[i - 1])?;
            }
            write!(f, "{n}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn line() -> (Graph, Vec<ChannelId>) {
        let mut g = Graph::new(4);
        let chans = (0..3)
            .map(|i| g.add_edge(NodeId::new(i), NodeId::new(i + 1)))
            .collect();
        (g, chans)
    }

    #[test]
    fn basic_accessors() {
        let (_, ch) = line();
        let p = Path::new(
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)],
            vec![ch[0], ch[1]],
        );
        assert_eq!(p.source(), NodeId::new(0));
        assert_eq!(p.target(), NodeId::new(2));
        assert_eq!(p.hops(), 2);
        assert_eq!(p.nodes().len(), 3);
        assert_eq!(p.channels().len(), 2);
        assert!(!p.has_node_cycle());
    }

    #[test]
    fn trivial_path() {
        let p = Path::trivial(NodeId::new(7));
        assert_eq!(p.source(), p.target());
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn hops_iter_order() {
        let (_, ch) = line();
        let p = Path::new(
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            vec![ch[1], ch[2]],
        );
        let hops: Vec<_> = p.hops_iter().collect();
        assert_eq!(hops[0], (NodeId::new(1), ch[1], NodeId::new(2)));
        assert_eq!(hops[1], (NodeId::new(2), ch[2], NodeId::new(3)));
    }

    #[test]
    fn validate_detects_mismatch() {
        let (g, ch) = line();
        let good = Path::new(vec![NodeId::new(0), NodeId::new(1)], vec![ch[0]]);
        assert!(good.validate(&g).is_ok());
        // channel 2 connects 2-3, not 0-1
        let bad = Path::new(vec![NodeId::new(0), NodeId::new(1)], vec![ch[2]]);
        assert!(bad.validate(&g).is_err());
    }

    #[test]
    fn join_paths() {
        let (_, ch) = line();
        let a = Path::new(vec![NodeId::new(0), NodeId::new(1)], vec![ch[0]]);
        let b = Path::new(
            vec![NodeId::new(1), NodeId::new(2), NodeId::new(3)],
            vec![ch[1], ch[2]],
        );
        let joined = a.join(b);
        assert_eq!(joined.hops(), 3);
        assert_eq!(joined.source(), NodeId::new(0));
        assert_eq!(joined.target(), NodeId::new(3));
    }

    #[test]
    #[should_panic(expected = "paths do not meet")]
    fn join_mismatch_panics() {
        let (_, ch) = line();
        let a = Path::new(vec![NodeId::new(0), NodeId::new(1)], vec![ch[0]]);
        let b = Path::new(vec![NodeId::new(2), NodeId::new(3)], vec![ch[2]]);
        let _ = a.join(b);
    }

    #[test]
    fn cycle_detection() {
        let mut g = Graph::new(3);
        let c0 = g.add_edge(NodeId::new(0), NodeId::new(1));
        let c1 = g.add_edge(NodeId::new(1), NodeId::new(2));
        let c2 = g.add_edge(NodeId::new(2), NodeId::new(0));
        let p = Path::new(
            vec![
                NodeId::new(0),
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(0),
            ],
            vec![c0, c1, c2],
        );
        assert!(p.has_node_cycle());
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn debug_format() {
        let (_, ch) = line();
        let p = Path::new(vec![NodeId::new(0), NodeId::new(1)], vec![ch[0]]);
        assert_eq!(format!("{p:?}"), "Path[n0 -ch0-> n1]");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let _ = Path::new(vec![NodeId::new(0), NodeId::new(1)], vec![]);
    }
}
