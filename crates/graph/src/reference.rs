//! `Vec<Vec<…>>` reference adjacency — the executable specification the
//! CSR [`Graph`] is pinned against.
//!
//! This is the layout the CSR core replaced: one heap-allocated neighbour
//! list per node, closures removing entries in place (`retain`), reopens
//! appending at the end. It is *not* used by the production engine; it
//! exists so that
//!
//! * the equivalence proptests can replay a random mutation sequence on
//!   both layouts and demand bit-identical iteration order and search
//!   results, and
//! * the layout benchmarks can run the *same* monomorphized search code
//!   over both adjacencies in the same build, making the CSR speedup
//!   claim an apples-to-apples measurement.
//!
//! [`Graph`]: crate::Graph

use pcn_types::{ChannelId, NodeId, PcnError, Result};

use crate::{EdgeRef, Topology};

/// The pre-CSR adjacency layout: per-node `Vec`s of `(channel, neighbour)`
/// pairs. Mirrors [`crate::Graph`]'s mutation semantics exactly — add,
/// close (remove in place), reopen (append) — so the two stay comparable
/// under any event sequence. Implements [`Topology`], so every search in
/// this crate runs on it unchanged.
#[derive(Clone, Debug, Default)]
pub struct ReferenceGraph {
    edges: Vec<(NodeId, NodeId, bool)>,
    adj: Vec<Vec<(u32, NodeId)>>,
}

impl ReferenceGraph {
    /// Creates a reference graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        ReferenceGraph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected channels (including closed tombstones).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        NodeId::from_index(self.adj.len() - 1)
    }

    /// Adds an undirected channel between `a` and `b` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> ChannelId {
        assert!(a.index() < self.adj.len(), "node {a} out of range");
        assert!(b.index() < self.adj.len(), "node {b} out of range");
        assert_ne!(a, b, "self-loop channels are not allowed");
        let id = u32::try_from(self.edges.len()).expect("too many edges");
        self.edges.push((a, b, false));
        self.adj[a.index()].push((id, b));
        self.adj[b.index()].push((id, a));
        ChannelId::new(id)
    }

    /// Closes channel `id`, removing its adjacency entries in place
    /// (surviving order untouched).
    ///
    /// # Errors
    ///
    /// [`PcnError::UnknownChannel`] for a bad id or an already-closed
    /// channel.
    pub fn close_channel(&mut self, id: ChannelId) -> Result<()> {
        let edge = self
            .edges
            .get_mut(id.index())
            .filter(|e| !e.2)
            .ok_or(PcnError::UnknownChannel(id))?;
        edge.2 = true;
        let (a, b) = (edge.0, edge.1);
        let raw = id.raw();
        self.adj[a.index()].retain(|&(ch, _)| ch != raw);
        self.adj[b.index()].retain(|&(ch, _)| ch != raw);
        Ok(())
    }

    /// Reopens a closed channel, appending its adjacency entries.
    ///
    /// # Errors
    ///
    /// [`PcnError::UnknownChannel`] for a bad id or a channel that is
    /// not closed.
    pub fn reopen_channel(&mut self, id: ChannelId) -> Result<()> {
        let edge = self
            .edges
            .get_mut(id.index())
            .filter(|e| e.2)
            .ok_or(PcnError::UnknownChannel(id))?;
        edge.2 = false;
        let (a, b) = (edge.0, edge.1);
        self.adj[a.index()].push((id.raw(), b));
        self.adj[b.index()].push((id.raw(), a));
        Ok(())
    }

    /// Degree of `node` (open incident channels).
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj.get(node.index()).map_or(0, Vec::len)
    }

    /// Iterates over the directed edges leaving `node`, insertion order.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.adj
            .get(node.index())
            .into_iter()
            .flatten()
            .map(move |&(id, nb)| EdgeRef {
                id: ChannelId::new(id),
                from: node,
                to: nb,
            })
    }
}

impl Topology for ReferenceGraph {
    fn node_count(&self) -> usize {
        ReferenceGraph::node_count(self)
    }

    fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        ReferenceGraph::out_edges(self, node)
    }

    fn directed_edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.2)
            .flat_map(|(i, e)| {
                let id = ChannelId::from_index(i);
                [
                    EdgeRef {
                        id,
                        from: e.0,
                        to: e.1,
                    },
                    EdgeRef {
                        id,
                        from: e.1,
                        to: e.0,
                    },
                ]
            })
    }

    fn endpoints(&self, id: ChannelId) -> Result<(NodeId, NodeId)> {
        self.edges
            .get(id.index())
            .map(|e| (e.0, e.1))
            .ok_or(PcnError::UnknownChannel(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{shortest_path, Graph};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn mirrors_graph_semantics() {
        let mut g = Graph::new(4);
        let mut r = ReferenceGraph::new(4);
        for (a, b) in [(0, 1), (1, 3), (0, 2), (2, 3), (0, 1)] {
            assert_eq!(g.add_edge(n(a), n(b)), r.add_edge(n(a), n(b)));
        }
        g.close_channel(ChannelId::new(0)).unwrap();
        r.close_channel(ChannelId::new(0)).unwrap();
        g.reopen_channel(ChannelId::new(0)).unwrap();
        r.reopen_channel(ChannelId::new(0)).unwrap();
        for v in 0..4 {
            let gv: Vec<EdgeRef> = g.out_edges(n(v)).collect();
            let rv: Vec<EdgeRef> = r.out_edges(n(v)).collect();
            assert_eq!(gv, rv, "node {v} iteration order");
            assert_eq!(g.degree(n(v)), r.degree(n(v)));
        }
        let got = shortest_path(&r, n(0), n(3), |_| Some(1.0)).unwrap();
        let want = g.shortest_path(n(0), n(3), |_| Some(1.0)).unwrap();
        assert_eq!(got.0, want.0);
        assert_eq!(got.1.nodes(), want.1.nodes());
        assert_eq!(got.1.channels(), want.1.channels());
    }

    #[test]
    fn close_reopen_errors_match_graph() {
        let mut r = ReferenceGraph::new(2);
        let c = r.add_edge(n(0), n(1));
        assert!(r.reopen_channel(c).is_err());
        r.close_channel(c).unwrap();
        assert!(r.close_channel(c).is_err());
        assert!(r.close_channel(ChannelId::new(9)).is_err());
        r.reopen_channel(c).unwrap();
        assert_eq!(r.degree(n(0)), 1);
    }
}
