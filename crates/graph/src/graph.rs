//! Core undirected multigraph with directed edge views.

use pcn_types::{ChannelId, NodeId, PcnError, Result};

/// A directed view of an undirected channel, as seen by algorithms.
///
/// Each undirected channel `(a, b)` yields two `EdgeRef`s: `a → b` and
/// `b → a`. Cost and capacity closures receive an `EdgeRef` so they can
/// price the two directions differently (directed channel balances).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// The undirected channel this direction belongs to.
    pub id: ChannelId,
    /// Tail of the directed edge.
    pub from: NodeId,
    /// Head of the directed edge.
    pub to: NodeId,
}

impl EdgeRef {
    /// The same channel traversed in the opposite direction.
    pub fn reversed(self) -> EdgeRef {
        EdgeRef {
            id: self.id,
            from: self.to,
            to: self.from,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Edge {
    a: NodeId,
    b: NodeId,
    /// Tombstone flag: a closed channel keeps its dense id (so funds,
    /// queues and price tables stay index-stable) but leaves the
    /// adjacency lists, making it invisible to every search.
    closed: bool,
}

/// An undirected multigraph over nodes `0..n`.
///
/// Nodes are dense indices ([`NodeId`]); channels are dense indices
/// ([`ChannelId`]) in insertion order. Parallel channels between the same
/// node pair are allowed (they are distinct channels with their own funds);
/// self-loops are rejected.
///
/// # Examples
///
/// ```
/// use pcn_graph::Graph;
/// use pcn_types::NodeId;
///
/// let mut g = Graph::new(3);
/// let ch = g.add_edge(NodeId::new(0), NodeId::new(1));
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.endpoints(ch).unwrap(), (NodeId::new(0), NodeId::new(1)));
/// assert_eq!(g.degree(NodeId::new(1)), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Graph {
    edges: Vec<Edge>,
    /// adjacency: for each node, (channel index, neighbour).
    adj: Vec<Vec<(u32, NodeId)>>,
    /// Monotone mutation counter; see [`Graph::topology_epoch`].
    topology_epoch: u64,
    /// Number of edges currently closed (tombstoned).
    closed_count: usize,
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
            topology_epoch: 0,
            closed_count: 0,
        }
    }

    /// The topology epoch: bumped on every structural mutation
    /// ([`Graph::add_node`] / [`Graph::add_edge`] /
    /// [`Graph::close_channel`] / [`Graph::reopen_channel`]).
    ///
    /// Epoch-versioned caches (the routing layer's `PathCache`) snapshot
    /// this value when they memoize a path computation and treat the
    /// entry as stale once it moves — the invalidation half of the
    /// contract that keeps cached results bit-identical to recomputation.
    /// The counter is per-instance (a `clone()` carries the current value
    /// and the two instances advance independently), so a cache must
    /// observe the same `Graph` instance it keys on.
    pub fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected channels.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.adj.push(Vec::new());
        self.topology_epoch += 1;
        NodeId::from_index(self.adj.len() - 1)
    }

    /// Adds an undirected channel between `a` and `b` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or if `a == b` (self-loop).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> ChannelId {
        assert!(a.index() < self.adj.len(), "node {a} out of range");
        assert!(b.index() < self.adj.len(), "node {b} out of range");
        assert_ne!(a, b, "self-loop channels are not allowed");
        let id = u32::try_from(self.edges.len()).expect("too many edges");
        self.edges.push(Edge {
            a,
            b,
            closed: false,
        });
        self.adj[a.index()].push((id, b));
        self.adj[b.index()].push((id, a));
        self.topology_epoch += 1;
        ChannelId::new(id)
    }

    /// Closes channel `id`: it disappears from the adjacency lists (every
    /// search, [`Graph::degree`], [`Graph::edge_between`] and neighbour
    /// iteration stop seeing it) while the edge slot — and the dense id
    /// space every side table indexes by — survives as a tombstone.
    /// [`Graph::endpoints`] keeps answering for closed channels so
    /// in-flight state (locked funds awaiting refund) can still unwind.
    /// Bumps the topology epoch.
    ///
    /// # Errors
    ///
    /// [`PcnError::UnknownChannel`] for a bad id or a channel that is
    /// already closed.
    pub fn close_channel(&mut self, id: ChannelId) -> Result<()> {
        let edge = self
            .edges
            .get_mut(id.index())
            .filter(|e| !e.closed)
            .ok_or(PcnError::UnknownChannel(id))?;
        edge.closed = true;
        let (a, b) = (edge.a, edge.b);
        let raw = id.raw();
        // `retain` keeps the remaining adjacency order intact, so search
        // iteration stays deterministic across close/reopen sequences.
        self.adj[a.index()].retain(|&(ch, _)| ch != raw);
        self.adj[b.index()].retain(|&(ch, _)| ch != raw);
        self.closed_count += 1;
        self.topology_epoch += 1;
        Ok(())
    }

    /// Reopens a previously closed channel: its adjacency entries are
    /// restored (appended, deterministically) and searches see it again.
    /// Bumps the topology epoch.
    ///
    /// # Errors
    ///
    /// [`PcnError::UnknownChannel`] for a bad id or a channel that is not
    /// closed.
    pub fn reopen_channel(&mut self, id: ChannelId) -> Result<()> {
        let edge = self
            .edges
            .get_mut(id.index())
            .filter(|e| e.closed)
            .ok_or(PcnError::UnknownChannel(id))?;
        edge.closed = false;
        let (a, b) = (edge.a, edge.b);
        self.adj[a.index()].push((id.raw(), b));
        self.adj[b.index()].push((id.raw(), a));
        self.closed_count -= 1;
        self.topology_epoch += 1;
        Ok(())
    }

    /// Whether channel `id` is currently closed (unknown ids are not).
    pub fn is_closed(&self, id: ChannelId) -> bool {
        self.edges.get(id.index()).is_some_and(|e| e.closed)
    }

    /// Number of channels currently open (edge count minus tombstones).
    pub fn open_edge_count(&self) -> usize {
        self.edges.len() - self.closed_count
    }

    /// Iterates over the ids of the currently open channels, ascending.
    pub fn open_edges(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.closed)
            .map(|(i, _)| ChannelId::from_index(i))
    }

    /// Returns the endpoints of channel `id` in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`PcnError::UnknownChannel`] if the channel does not exist.
    pub fn endpoints(&self, id: ChannelId) -> Result<(NodeId, NodeId)> {
        self.edges
            .get(id.index())
            .map(|e| (e.a, e.b))
            .ok_or(PcnError::UnknownChannel(id))
    }

    /// Returns the endpoint of `id` opposite to `node`.
    ///
    /// # Errors
    ///
    /// Returns [`PcnError::UnknownChannel`] for a bad channel id and
    /// [`PcnError::UnknownNode`] if `node` is not an endpoint.
    pub fn other_endpoint(&self, id: ChannelId, node: NodeId) -> Result<NodeId> {
        let (a, b) = self.endpoints(id)?;
        if node == a {
            Ok(b)
        } else if node == b {
            Ok(a)
        } else {
            Err(PcnError::UnknownNode(node))
        }
    }

    /// Whether any channel directly connects `a` and `b`.
    pub fn has_edge_between(&self, a: NodeId, b: NodeId) -> bool {
        self.adj
            .get(a.index())
            .is_some_and(|l| l.iter().any(|&(_, nb)| nb == b))
    }

    /// Returns the first channel between `a` and `b`, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<ChannelId> {
        self.adj.get(a.index()).and_then(|l| {
            l.iter()
                .find(|&&(_, nb)| nb == b)
                .map(|&(id, _)| ChannelId::new(id))
        })
    }

    /// Degree (number of incident channels) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj.get(node.index()).map_or(0, Vec::len)
    }

    /// Iterates over the directed edges leaving `node`.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        self.adj
            .get(node.index())
            .into_iter()
            .flatten()
            .map(move |&(id, nb)| EdgeRef {
                id: ChannelId::new(id),
                from: node,
                to: nb,
            })
    }

    /// Iterates over the neighbours of `node` (with multiplicity).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj
            .get(node.index())
            .into_iter()
            .flatten()
            .map(|&(_, nb)| nb)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.adj.len()).map(NodeId::from_index)
    }

    /// Iterates over all channel ids, **including closed tombstones** —
    /// the dense id space side tables are built over. Use
    /// [`Graph::open_edges`] for the channels searches can traverse.
    pub fn edges(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.edges.len()).map(ChannelId::from_index)
    }

    /// Iterates over both directed views of every **open** channel
    /// (closed tombstones are invisible, like in the adjacency lists).
    pub fn directed_edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.closed)
            .flat_map(|(i, e)| {
                let id = ChannelId::from_index(i);
                [
                    EdgeRef {
                        id,
                        from: e.a,
                        to: e.b,
                    },
                    EdgeRef {
                        id,
                        from: e.b,
                        to: e.a,
                    },
                ]
            })
    }

    /// Shortest path by generalized edge cost (Dijkstra).
    ///
    /// `cost` returns the cost of traversing a directed edge, or `None` if
    /// the edge is unusable in that direction. Non-finite or negative costs
    /// are treated as unusable.
    ///
    /// Returns `None` when no path exists.
    pub fn shortest_path<F>(&self, from: NodeId, to: NodeId, cost: F) -> Option<(f64, Path)>
    where
        F: FnMut(EdgeRef) -> Option<f64>,
    {
        crate::dijkstra::shortest_path(self, from, to, cost)
    }

    /// Dijkstra from a single source to all reachable nodes.
    pub fn shortest_path_tree<F>(&self, from: NodeId, cost: F) -> crate::ShortestPathTree
    where
        F: FnMut(EdgeRef) -> Option<f64>,
    {
        crate::dijkstra::shortest_path_tree(self, from, cost)
    }

    /// [`Graph::shortest_path`] on the reusable buffers of a
    /// [`crate::SearchWorkspace`]: repeated queries are allocation-free
    /// (apart from the returned [`Path`]) and bit-identical to the
    /// allocating form.
    pub fn shortest_path_in<F>(
        &self,
        ws: &mut crate::SearchWorkspace,
        from: NodeId,
        to: NodeId,
        cost: F,
    ) -> Option<(f64, Path)>
    where
        F: FnMut(EdgeRef) -> Option<f64>,
    {
        crate::dijkstra::shortest_path_in(self, ws, from, to, cost)
    }

    /// [`Graph::shortest_path_tree`] into a workspace-owned tree: the
    /// returned reference borrows the workspace and is overwritten by the
    /// next tree query on it.
    pub fn shortest_path_tree_in<'a, F>(
        &self,
        ws: &'a mut crate::SearchWorkspace,
        from: NodeId,
        cost: F,
    ) -> &'a crate::ShortestPathTree
    where
        F: FnMut(EdgeRef) -> Option<f64>,
    {
        crate::dijkstra::shortest_path_tree_in(self, ws, from, cost)
    }
}

pub use crate::path::Path;

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1, 1-3, 0-2, 2-3
        let mut g = Graph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(3));
        g.add_edge(NodeId::new(0), NodeId::new(2));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(3)), 2);
    }

    #[test]
    fn add_node_extends() {
        let mut g = diamond();
        let n = g.add_node();
        assert_eq!(n, NodeId::new(4));
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.degree(n), 0);
    }

    #[test]
    fn endpoints_and_other() {
        let g = diamond();
        let ch = ChannelId::new(0);
        assert_eq!(g.endpoints(ch).unwrap(), (NodeId::new(0), NodeId::new(1)));
        assert_eq!(
            g.other_endpoint(ch, NodeId::new(0)).unwrap(),
            NodeId::new(1)
        );
        assert_eq!(
            g.other_endpoint(ch, NodeId::new(1)).unwrap(),
            NodeId::new(0)
        );
        assert_eq!(
            g.other_endpoint(ch, NodeId::new(2)),
            Err(PcnError::UnknownNode(NodeId::new(2)))
        );
        assert_eq!(
            g.endpoints(ChannelId::new(99)),
            Err(PcnError::UnknownChannel(ChannelId::new(99)))
        );
    }

    #[test]
    fn adjacency_queries() {
        let g = diamond();
        assert!(g.has_edge_between(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_edge_between(NodeId::new(0), NodeId::new(3)));
        assert_eq!(
            g.edge_between(NodeId::new(0), NodeId::new(2)),
            Some(ChannelId::new(2))
        );
        assert_eq!(g.edge_between(NodeId::new(0), NodeId::new(3)), None);
        let mut nb: Vec<_> = g.neighbors(NodeId::new(0)).collect();
        nb.sort();
        assert_eq!(nb, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn out_edges_directed() {
        let g = diamond();
        let outs: Vec<_> = g.out_edges(NodeId::new(3)).collect();
        assert_eq!(outs.len(), 2);
        for e in outs {
            assert_eq!(e.from, NodeId::new(3));
            assert!(e.to == NodeId::new(1) || e.to == NodeId::new(2));
            assert_eq!(e.reversed().from, e.to);
            assert_eq!(e.reversed().id, e.id);
        }
    }

    #[test]
    fn directed_edges_doubles() {
        let g = diamond();
        assert_eq!(g.directed_edges().count(), 8);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new(2);
        let c1 = g.add_edge(NodeId::new(0), NodeId::new(1));
        let c2 = g.add_edge(NodeId::new(0), NodeId::new(1));
        assert_ne!(c1, c2);
        assert_eq!(g.degree(NodeId::new(0)), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId::new(1), NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(5));
    }

    #[test]
    fn topology_epoch_tracks_mutations() {
        let mut g = Graph::new(2);
        assert_eq!(g.topology_epoch(), 0);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        assert_eq!(g.topology_epoch(), 1);
        g.add_node();
        assert_eq!(g.topology_epoch(), 2);
        // Clones carry the value and then advance independently.
        let mut c = g.clone();
        c.add_node();
        assert_eq!(g.topology_epoch(), 2);
        assert_eq!(c.topology_epoch(), 3);
    }

    #[test]
    fn close_hides_channel_everywhere_but_endpoints() {
        let mut g = diamond();
        let ch = ChannelId::new(0); // 0-1
        let epoch = g.topology_epoch();
        g.close_channel(ch).unwrap();
        assert!(g.is_closed(ch));
        assert_eq!(g.topology_epoch(), epoch + 1);
        assert_eq!(g.open_edge_count(), 3);
        assert_eq!(g.edge_count(), 4, "the dense id space is untouched");
        // Adjacency-derived views no longer see the channel…
        assert!(!g.has_edge_between(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert!(g.out_edges(NodeId::new(0)).all(|e| e.id != ch));
        assert_eq!(g.directed_edges().count(), 6);
        assert!(g.open_edges().all(|c| c != ch));
        // …but endpoints still resolve (in-flight unwinding needs them).
        assert_eq!(g.endpoints(ch).unwrap(), (NodeId::new(0), NodeId::new(1)));
        // No path 0→1 except via 2-3.
        let (cost, _) = g
            .shortest_path(NodeId::new(0), NodeId::new(1), |_| Some(1.0))
            .expect("detour exists");
        assert_eq!(cost, 3.0);
        // Double close is an error.
        assert!(g.close_channel(ch).is_err());
    }

    #[test]
    fn reopen_restores_searchability() {
        let mut g = diamond();
        let ch = ChannelId::new(0);
        g.close_channel(ch).unwrap();
        let epoch = g.topology_epoch();
        g.reopen_channel(ch).unwrap();
        assert!(!g.is_closed(ch));
        assert_eq!(g.topology_epoch(), epoch + 1);
        assert_eq!(g.open_edge_count(), 4);
        assert!(g.has_edge_between(NodeId::new(0), NodeId::new(1)));
        let (cost, p) = g
            .shortest_path(NodeId::new(0), NodeId::new(1), |_| Some(1.0))
            .unwrap();
        assert_eq!(cost, 1.0);
        assert_eq!(p.channels(), [ch]);
        // Reopening an open channel is an error.
        assert!(g.reopen_channel(ch).is_err());
        assert!(g.reopen_channel(ChannelId::new(99)).is_err());
    }

    #[test]
    fn close_preserves_remaining_adjacency_order() {
        let mut g = Graph::new(3);
        let c0 = g.add_edge(NodeId::new(0), NodeId::new(1));
        let c1 = g.add_edge(NodeId::new(0), NodeId::new(2));
        let c2 = g.add_edge(NodeId::new(0), NodeId::new(1));
        g.close_channel(c1).unwrap();
        let order: Vec<ChannelId> = g.out_edges(NodeId::new(0)).map(|e| e.id).collect();
        assert_eq!(order, vec![c0, c2], "retain keeps insertion order");
        g.reopen_channel(c1).unwrap();
        let order: Vec<ChannelId> = g.out_edges(NodeId::new(0)).map(|e| e.id).collect();
        assert_eq!(order, vec![c0, c2, c1], "reopen appends deterministically");
    }

    #[test]
    fn empty_graph_iterators() {
        let g = Graph::new(0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.degree(NodeId::new(0)), 0);
        assert_eq!(g.out_edges(NodeId::new(0)).count(), 0);
    }
}
