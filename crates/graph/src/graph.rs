//! Core undirected multigraph with directed edge views, stored as a
//! churn-absorbing compressed-sparse-row (CSR) adjacency.
//!
//! See the crate-level *memory layout* section for the full contract; in
//! short: one contiguous entry array plus a row-offset table, closed
//! channels flagged in place (skipped at iteration, order of survivors
//! preserved), newly opened channels appended to a small per-node delta
//! overlay, and a watermark-triggered deterministic compaction that folds
//! the overlay back into the dense arrays.

use pcn_types::{ChannelId, NodeId, PcnError, Result};

/// A directed view of an undirected channel, as seen by algorithms.
///
/// Each undirected channel `(a, b)` yields two `EdgeRef`s: `a → b` and
/// `b → a`. Cost and capacity closures receive an `EdgeRef` so they can
/// price the two directions differently (directed channel balances).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct EdgeRef {
    /// The undirected channel this direction belongs to.
    pub id: ChannelId,
    /// Tail of the directed edge.
    pub from: NodeId,
    /// Head of the directed edge.
    pub to: NodeId,
}

impl EdgeRef {
    /// The same channel traversed in the opposite direction.
    pub fn reversed(self) -> EdgeRef {
        EdgeRef {
            id: self.id,
            from: self.to,
            to: self.from,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Edge {
    a: NodeId,
    b: NodeId,
    /// Tombstone flag: a closed channel keeps its dense id (so funds,
    /// queues and price tables stay index-stable) but leaves the
    /// adjacency, making it invisible to every search.
    closed: bool,
}

/// One adjacency slot: the channel id in the low 31 bits of `tag`, the
/// neighbour in `to`. Bit 31 of `tag` marks the entry *skipped* (its
/// channel closed, or superseded by a reopen) so iteration can reject it
/// from the entry itself — no random access into the edge table, which is
/// what keeps the hot loop cache-dense. 8 bytes total.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct AdjEntry {
    tag: u32,
    to: NodeId,
}

/// Bit 31 of [`AdjEntry::tag`]: set = skip this entry at iteration.
const SKIP: u32 = 1 << 31;
/// Bit 31 of `row_offsets[v]`: set = node `v` has delta-overlay entries.
/// Stealing the bit from a word the iterator already loads means the
/// common no-overlay case never touches the `delta` spine — on a
/// 100k-node world that spine is 2.4 MB of `Vec` headers, a guaranteed
/// cache miss per visited node. Offsets therefore address at most
/// 2³¹ − 1 entries, which the edge-count assert already guarantees.
const HAS_DELTA: u32 = 1 << 31;
/// A skipped entry that no longer corresponds to any channel state (its
/// channel was reopened and re-appended elsewhere). Dropped at compaction
/// like any flagged entry; never matched by close/reopen scans.
const DEAD: u32 = u32::MAX;
/// Compaction watermark floor: below this many overlay entries (delta +
/// flagged) the graph never compacts implicitly, so small test graphs see
/// exactly one epoch bump per mutation.
const COMPACT_MIN_OVERLAY: usize = 256;

/// An undirected multigraph over nodes `0..n`.
///
/// Nodes are dense indices ([`NodeId`]); channels are dense indices
/// ([`ChannelId`]) in insertion order. Parallel channels between the same
/// node pair are allowed (they are distinct channels with their own funds);
/// self-loops are rejected.
///
/// The adjacency is compressed-sparse-row with a per-node delta overlay;
/// neighbour iteration order is the insertion order a `Vec<Vec<…>>`
/// adjacency would produce (closures remove in place, reopens append),
/// so search results are layout-independent. See the crate docs' *memory
/// layout* section.
///
/// # Examples
///
/// ```
/// use pcn_graph::Graph;
/// use pcn_types::NodeId;
///
/// let mut g = Graph::new(3);
/// let ch = g.add_edge(NodeId::new(0), NodeId::new(1));
/// assert_eq!(g.edge_count(), 1);
/// assert_eq!(g.endpoints(ch).unwrap(), (NodeId::new(0), NodeId::new(1)));
/// assert_eq!(g.degree(NodeId::new(1)), 1);
/// ```
#[derive(Clone, Debug)]
pub struct Graph {
    edges: Vec<Edge>,
    /// Dense CSR entries; node `v`'s row is
    /// `csr[row_offsets[v]..row_offsets[v + 1]]`.
    csr: Vec<AdjEntry>,
    /// `node_count() + 1` offsets into `csr`; bit 31 of `row_offsets[v]`
    /// is the [`HAS_DELTA`] flag (mask with `!HAS_DELTA` before use).
    /// Nodes added after the last compaction have an empty CSR row
    /// (their entries live in `delta`).
    row_offsets: Vec<u32>,
    /// Per-node append overlay for channels opened since the last
    /// compaction; iterated after the CSR row. Consulted only when the
    /// node's [`HAS_DELTA`] offset bit is set.
    delta: Vec<Vec<AdjEntry>>,
    /// Per-node count of live (unflagged) entries — the open degree.
    live_deg: Vec<u32>,
    /// Total entries across all delta rows.
    delta_entries: usize,
    /// Flagged (skip-marked) entries across CSR and delta.
    flagged_entries: usize,
    /// Completed compaction passes; see [`Graph::compactions`].
    compactions: u64,
    /// Monotone mutation counter; see [`Graph::topology_epoch`].
    topology_epoch: u64,
    /// Number of edges currently closed (tombstoned).
    closed_count: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

/// Memory-shape snapshot of a [`Graph`]'s adjacency, from
/// [`Graph::adjacency_stats`]. Used by the large-world benchmarks to
/// report bytes/node and bytes/entry against the crate's ≤ 16
/// bytes-per-neighbour-entry budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdjacencyStats {
    /// Entries in the dense CSR array (live + flagged).
    pub csr_entries: usize,
    /// Entries in the per-node delta overlay (live + flagged).
    pub delta_entries: usize,
    /// Flagged (skipped) entries across both.
    pub flagged_entries: usize,
    /// Bytes per adjacency entry (the `(tag, neighbour)` slot).
    pub entry_bytes: usize,
    /// Bytes held by the row-offset table.
    pub offset_bytes: usize,
    /// Compaction passes completed so far.
    pub compactions: u64,
}

impl AdjacencyStats {
    /// Total bytes held by adjacency entries (CSR + delta, excluding
    /// delta `Vec` headers and the offset table).
    pub fn entry_total_bytes(&self) -> usize {
        (self.csr_entries + self.delta_entries) * self.entry_bytes
    }
}

impl Graph {
    /// Creates a graph with `n` isolated nodes.
    pub fn new(n: usize) -> Self {
        Graph {
            edges: Vec::new(),
            csr: Vec::new(),
            row_offsets: vec![0; n + 1],
            delta: vec![Vec::new(); n],
            live_deg: vec![0; n],
            delta_entries: 0,
            flagged_entries: 0,
            compactions: 0,
            topology_epoch: 0,
            closed_count: 0,
        }
    }

    /// Builds a graph with `n` nodes and the given channels in one pass,
    /// directly into the dense CSR arrays — no per-node `Vec` growth, no
    /// delta overlay. Channel ids are assigned in list order; the
    /// adjacency (and therefore every search) is bit-identical to calling
    /// [`Graph::add_edge`] for each pair in sequence. O(V + E).
    ///
    /// This is the generator path: 100k-node worlds materialize without
    /// an O(E)-reallocation churn phase. The topology epoch ends at
    /// `pairs.len()`, exactly as the incremental build would.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-loops, like
    /// [`Graph::add_edge`].
    pub fn from_edges(n: usize, pairs: &[(NodeId, NodeId)]) -> Self {
        let mut live_deg = vec![0u32; n];
        for &(a, b) in pairs {
            assert!(a.index() < n, "node {a} out of range");
            assert!(b.index() < n, "node {b} out of range");
            assert_ne!(a, b, "self-loop channels are not allowed");
            live_deg[a.index()] += 1;
            live_deg[b.index()] += 1;
        }
        assert!(pairs.len() < (SKIP / 2 - 1) as usize, "too many edges");
        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        row_offsets.push(0);
        for &d in &live_deg {
            acc += d;
            row_offsets.push(acc);
        }
        // Fill each row in ascending channel-id order: a per-node write
        // cursor walks its CSR range exactly as sequential `add_edge`
        // pushes would have.
        let mut cursor: Vec<u32> = row_offsets[..n].to_vec();
        let mut csr = vec![
            AdjEntry {
                tag: DEAD,
                to: NodeId::new(0)
            };
            acc as usize
        ];
        let mut edges = Vec::with_capacity(pairs.len());
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let tag = i as u32;
            csr[cursor[a.index()] as usize] = AdjEntry { tag, to: b };
            cursor[a.index()] += 1;
            csr[cursor[b.index()] as usize] = AdjEntry { tag, to: a };
            cursor[b.index()] += 1;
            edges.push(Edge {
                a,
                b,
                closed: false,
            });
        }
        Graph {
            edges,
            csr,
            row_offsets,
            delta: vec![Vec::new(); n],
            live_deg,
            delta_entries: 0,
            flagged_entries: 0,
            compactions: 0,
            topology_epoch: pairs.len() as u64,
            closed_count: 0,
        }
    }

    /// The topology epoch: bumped on every structural mutation
    /// ([`Graph::add_node`] / [`Graph::add_edge`] /
    /// [`Graph::close_channel`] / [`Graph::reopen_channel`], and once per
    /// [`Graph::compact`] pass).
    ///
    /// Epoch-versioned caches (the routing layer's `PathCache`) snapshot
    /// this value when they memoize a path computation and treat the
    /// entry as stale once it moves — the invalidation half of the
    /// contract that keeps cached results bit-identical to recomputation.
    /// The counter is per-instance (a `clone()` carries the current value
    /// and the two instances advance independently), so a cache must
    /// observe the same `Graph` instance it keys on.
    pub fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.live_deg.len()
    }

    /// Number of undirected channels.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        self.delta.push(Vec::new());
        self.live_deg.push(0);
        // The new node's CSR row is empty: duplicate the trailing offset
        // (the trailing slot is past every node, so it never carries the
        // HAS_DELTA flag).
        let end = *self.row_offsets.last().expect("offsets never empty");
        self.row_offsets.push(end);
        self.topology_epoch += 1;
        NodeId::from_index(self.live_deg.len() - 1)
    }

    /// Adds an undirected channel between `a` and `b` and returns its id.
    ///
    /// The entries land in the delta overlay (visible immediately, after
    /// each endpoint's CSR row) and fold into the dense arrays at the
    /// next compaction.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range or if `a == b` (self-loop).
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> ChannelId {
        let n = self.node_count();
        assert!(a.index() < n, "node {a} out of range");
        assert!(b.index() < n, "node {b} out of range");
        assert_ne!(a, b, "self-loop channels are not allowed");
        // Tag bit 31 is the skip flag and `u32::MAX` the dead sentinel,
        // so raw channel ids must stay below both; offsets steal bit 31
        // too, capping entries (2 per edge) at 2³¹ − 1.
        assert!(self.edges.len() < (SKIP / 2 - 1) as usize, "too many edges");
        let id = self.edges.len() as u32;
        self.edges.push(Edge {
            a,
            b,
            closed: false,
        });
        self.delta[a.index()].push(AdjEntry { tag: id, to: b });
        self.delta[b.index()].push(AdjEntry { tag: id, to: a });
        self.row_offsets[a.index()] |= HAS_DELTA;
        self.row_offsets[b.index()] |= HAS_DELTA;
        self.delta_entries += 2;
        self.live_deg[a.index()] += 1;
        self.live_deg[b.index()] += 1;
        self.topology_epoch += 1;
        self.maybe_compact();
        ChannelId::new(id)
    }

    /// Closes channel `id`: it disappears from the adjacency (every
    /// search, [`Graph::degree`], [`Graph::edge_between`] and neighbour
    /// iteration stop seeing it) while the edge slot — and the dense id
    /// space every side table indexes by — survives as a tombstone.
    /// [`Graph::endpoints`] keeps answering for closed channels so
    /// in-flight state (locked funds awaiting refund) can still unwind.
    /// Bumps the topology epoch.
    ///
    /// The adjacency entries are flagged in place, so the iteration order
    /// of the surviving entries is untouched — the same order `retain` on
    /// a `Vec<Vec<…>>` adjacency would leave.
    ///
    /// # Errors
    ///
    /// [`PcnError::UnknownChannel`] for a bad id or a channel that is
    /// already closed.
    pub fn close_channel(&mut self, id: ChannelId) -> Result<()> {
        let edge = self
            .edges
            .get_mut(id.index())
            .filter(|e| !e.closed)
            .ok_or(PcnError::UnknownChannel(id))?;
        edge.closed = true;
        let (a, b) = (edge.a, edge.b);
        let raw = id.raw();
        self.flag_entry(a, raw);
        self.flag_entry(b, raw);
        self.live_deg[a.index()] -= 1;
        self.live_deg[b.index()] -= 1;
        self.closed_count += 1;
        self.topology_epoch += 1;
        self.maybe_compact();
        Ok(())
    }

    /// Reopens a previously closed channel: its adjacency entries are
    /// restored (appended, deterministically) and searches see it again.
    /// Bumps the topology epoch.
    ///
    /// The closed entry — if compaction has not already dropped it — is
    /// retired to the dead state and a fresh entry is appended to the
    /// delta overlay, reproducing the `Vec<Vec<…>>` "reopen appends at
    /// the end" order either way.
    ///
    /// # Errors
    ///
    /// [`PcnError::UnknownChannel`] for a bad id or a channel that is not
    /// closed.
    pub fn reopen_channel(&mut self, id: ChannelId) -> Result<()> {
        let edge = self
            .edges
            .get_mut(id.index())
            .filter(|e| e.closed)
            .ok_or(PcnError::UnknownChannel(id))?;
        edge.closed = false;
        let (a, b) = (edge.a, edge.b);
        let raw = id.raw();
        self.kill_flagged(a, raw);
        self.kill_flagged(b, raw);
        self.delta[a.index()].push(AdjEntry { tag: raw, to: b });
        self.delta[b.index()].push(AdjEntry { tag: raw, to: a });
        self.row_offsets[a.index()] |= HAS_DELTA;
        self.row_offsets[b.index()] |= HAS_DELTA;
        self.delta_entries += 2;
        self.live_deg[a.index()] += 1;
        self.live_deg[b.index()] += 1;
        self.closed_count -= 1;
        self.topology_epoch += 1;
        self.maybe_compact();
        Ok(())
    }

    /// Finds the live adjacency entry for channel `raw` in `v`'s row and
    /// flags it skipped.
    // splicer-lint: allow(r3) — private half-step helper; its only callers
    // (close_channel/reopen_channel) bump topology_epoch themselves
    fn flag_entry(&mut self, v: NodeId, raw: u32) {
        let v = v.index();
        let start = (self.row_offsets[v] & !HAS_DELTA) as usize;
        let end = (self.row_offsets[v + 1] & !HAS_DELTA) as usize;
        let hit = self.csr[start..end]
            .iter_mut()
            .chain(self.delta[v].iter_mut())
            .find(|e| e.tag == raw)
            .expect("open channel must have a live adjacency entry");
        hit.tag = raw | SKIP;
        self.flagged_entries += 1;
    }

    /// Retires `v`'s flagged entry for channel `raw` to the dead state so
    /// a later close of the reopened channel cannot match the stale slot.
    /// Tolerates absence: compaction may have dropped the entry already.
    // splicer-lint: allow(r3) — private half-step helper; its only caller
    // (reopen_channel) bumps topology_epoch itself
    fn kill_flagged(&mut self, v: NodeId, raw: u32) {
        let v = v.index();
        let start = (self.row_offsets[v] & !HAS_DELTA) as usize;
        let end = (self.row_offsets[v + 1] & !HAS_DELTA) as usize;
        if let Some(e) = self.csr[start..end]
            .iter_mut()
            .chain(self.delta[v].iter_mut())
            .find(|e| e.tag == (raw | SKIP))
        {
            e.tag = DEAD;
        }
    }

    /// Compacts when the overlay (delta + flagged entries) crosses the
    /// watermark: `max(256, csr_len / 8)`. The floor keeps small test
    /// graphs from compacting implicitly; the proportional term bounds
    /// both the per-iteration skip overhead and the amortized rebuild
    /// cost (a compaction is O(V + E), triggered at most once per E/8
    /// mutations).
    fn maybe_compact(&mut self) {
        if self.delta_entries + self.flagged_entries >= COMPACT_MIN_OVERLAY.max(self.csr.len() / 8)
        {
            self.compact();
        }
    }

    /// Folds the delta overlay back into the dense CSR arrays and drops
    /// flagged entries, preserving visible iteration order exactly.
    /// Deterministic; bumps the topology epoch exactly once. Usually
    /// triggered by the internal watermark — public so embedders with a
    /// natural quiesce point (end of a churn burst) can compact eagerly.
    pub fn compact(&mut self) {
        let n = self.node_count();
        let live_total: usize = self.live_deg.iter().map(|&d| d as usize).sum();
        let mut csr = Vec::with_capacity(live_total);
        let mut row_offsets = Vec::with_capacity(n + 1);
        row_offsets.push(0);
        for v in 0..n {
            let start = (self.row_offsets[v] & !HAS_DELTA) as usize;
            let end = (self.row_offsets[v + 1] & !HAS_DELTA) as usize;
            csr.extend(
                self.csr[start..end]
                    .iter()
                    .chain(self.delta[v].iter())
                    .filter(|e| e.tag & SKIP == 0),
            );
            row_offsets.push(csr.len() as u32);
        }
        // The rebuilt offsets carry no HAS_DELTA flags: every overlay
        // row is folded in and cleared below.
        self.csr = csr;
        self.row_offsets = row_offsets;
        for d in &mut self.delta {
            d.clear();
        }
        self.delta_entries = 0;
        self.flagged_entries = 0;
        self.compactions += 1;
        self.topology_epoch += 1;
    }

    /// Number of compaction passes completed so far. Deterministic for a
    /// deterministic mutation sequence — the engine surfaces it in its
    /// run stats so determinism tests can pin that churn actually crossed
    /// the watermark.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Memory-shape snapshot of the adjacency; see [`AdjacencyStats`].
    pub fn adjacency_stats(&self) -> AdjacencyStats {
        AdjacencyStats {
            csr_entries: self.csr.len(),
            delta_entries: self.delta_entries,
            flagged_entries: self.flagged_entries,
            entry_bytes: std::mem::size_of::<AdjEntry>(),
            offset_bytes: self.row_offsets.len() * std::mem::size_of::<u32>(),
            compactions: self.compactions,
        }
    }

    /// Whether channel `id` is currently closed (unknown ids are not).
    pub fn is_closed(&self, id: ChannelId) -> bool {
        self.edges.get(id.index()).is_some_and(|e| e.closed)
    }

    /// Number of channels currently open (edge count minus tombstones).
    pub fn open_edge_count(&self) -> usize {
        self.edges.len() - self.closed_count
    }

    /// Iterates over the ids of the currently open channels, ascending.
    pub fn open_edges(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.closed)
            .map(|(i, _)| ChannelId::from_index(i))
    }

    /// Returns the endpoints of channel `id` in insertion order.
    ///
    /// # Errors
    ///
    /// Returns [`PcnError::UnknownChannel`] if the channel does not exist.
    pub fn endpoints(&self, id: ChannelId) -> Result<(NodeId, NodeId)> {
        self.edges
            .get(id.index())
            .map(|e| (e.a, e.b))
            .ok_or(PcnError::UnknownChannel(id))
    }

    /// Returns the endpoint of `id` opposite to `node`.
    ///
    /// # Errors
    ///
    /// Returns [`PcnError::UnknownChannel`] for a bad channel id and
    /// [`PcnError::UnknownNode`] if `node` is not an endpoint.
    pub fn other_endpoint(&self, id: ChannelId, node: NodeId) -> Result<NodeId> {
        let (a, b) = self.endpoints(id)?;
        if node == a {
            Ok(b)
        } else if node == b {
            Ok(a)
        } else {
            Err(PcnError::UnknownNode(node))
        }
    }

    /// Whether any channel directly connects `a` and `b`.
    pub fn has_edge_between(&self, a: NodeId, b: NodeId) -> bool {
        self.edges_of(a).any(|e| e.to == b)
    }

    /// Returns the first channel between `a` and `b`, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<ChannelId> {
        self.edges_of(a).find(|e| e.to == b).map(|e| e.id)
    }

    /// Degree (number of incident open channels) of `node`. O(1) — the
    /// live count is maintained across opens/closes, never recounted.
    pub fn degree(&self, node: NodeId) -> usize {
        self.live_deg.get(node.index()).map_or(0, |&d| d as usize)
    }

    /// Iterates over the directed edges leaving `node` — `node`'s CSR row
    /// then its delta overlay, skipping flagged entries. Exact-size (the
    /// length is [`Graph::degree`], fetched lazily so plain iteration
    /// never reads the degree table); out-of-range nodes yield an empty
    /// iterator.
    ///
    /// The only per-call structural reads are `row_offsets[v..=v + 1]`
    /// and the CSR row itself: the overlay spine is consulted only when
    /// the offset's `HAS_DELTA` bit says the node has overlay entries.
    pub fn edges_of(&self, node: NodeId) -> EdgesOf<'_> {
        let v = node.index();
        let (row, delta) = match self.row_offsets.get(v + 1) {
            Some(&end) => {
                let start = self.row_offsets[v];
                let row = &self.csr[(start & !HAS_DELTA) as usize..(end & !HAS_DELTA) as usize];
                let delta = if start & HAS_DELTA == 0 {
                    &[][..]
                } else {
                    self.delta[v].as_slice()
                };
                (row, delta)
            }
            None => (&[][..], &[][..]),
        };
        EdgesOf {
            csr: row.iter(),
            delta: delta.iter(),
            from: node,
            live_deg: &self.live_deg,
            yielded: 0,
        }
    }

    /// Iterates over the directed edges leaving `node`. Alias of
    /// [`Graph::edges_of`], kept for the original API shape.
    pub fn out_edges(&self, node: NodeId) -> EdgesOf<'_> {
        self.edges_of(node)
    }

    /// Iterates over the neighbours of `node` (with multiplicity).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.edges_of(node).map(|e| e.to)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// Iterates over all channel ids, **including closed tombstones** —
    /// the dense id space side tables are built over. Use
    /// [`Graph::open_edges`] for the channels searches can traverse.
    pub fn edges(&self) -> impl Iterator<Item = ChannelId> {
        (0..self.edges.len()).map(ChannelId::from_index)
    }

    /// Iterates over both directed views of every **open** channel
    /// (closed tombstones are invisible, like in the adjacency).
    pub fn directed_edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.closed)
            .flat_map(|(i, e)| {
                let id = ChannelId::from_index(i);
                [
                    EdgeRef {
                        id,
                        from: e.a,
                        to: e.b,
                    },
                    EdgeRef {
                        id,
                        from: e.b,
                        to: e.a,
                    },
                ]
            })
    }

    /// Shortest path by generalized edge cost (Dijkstra).
    ///
    /// `cost` returns the cost of traversing a directed edge, or `None` if
    /// the edge is unusable in that direction. Non-finite or negative costs
    /// are treated as unusable.
    ///
    /// Returns `None` when no path exists.
    pub fn shortest_path<F>(&self, from: NodeId, to: NodeId, cost: F) -> Option<(f64, Path)>
    where
        F: FnMut(EdgeRef) -> Option<f64>,
    {
        crate::dijkstra::shortest_path(self, from, to, cost)
    }

    /// Dijkstra from a single source to all reachable nodes.
    pub fn shortest_path_tree<F>(&self, from: NodeId, cost: F) -> crate::ShortestPathTree
    where
        F: FnMut(EdgeRef) -> Option<f64>,
    {
        crate::dijkstra::shortest_path_tree(self, from, cost)
    }

    /// [`Graph::shortest_path`] on the reusable buffers of a
    /// [`crate::SearchWorkspace`]: repeated queries are allocation-free
    /// (apart from the returned [`Path`]) and bit-identical to the
    /// allocating form.
    pub fn shortest_path_in<F>(
        &self,
        ws: &mut crate::SearchWorkspace,
        from: NodeId,
        to: NodeId,
        cost: F,
    ) -> Option<(f64, Path)>
    where
        F: FnMut(EdgeRef) -> Option<f64>,
    {
        crate::dijkstra::shortest_path_in(self, ws, from, to, cost)
    }

    /// [`Graph::shortest_path_in`], goal-directed: bidirectional probe
    /// phase plus ALT landmark lower bounds when the workspace's table is
    /// fresh for this graph. Bit-identical results; always runs the full
    /// [`crate::AccelBounds::Full`] regime — footprint-recording callers
    /// must go through [`crate::shortest_path_accel_in`] with
    /// [`crate::AccelBounds::TopologyOnly`] instead.
    pub fn shortest_path_accel_in<F>(
        &self,
        ws: &mut crate::SearchWorkspace,
        from: NodeId,
        to: NodeId,
        cost: F,
    ) -> Option<(f64, Path)>
    where
        F: FnMut(EdgeRef) -> Option<f64>,
    {
        crate::accel::shortest_path_accel_in(self, ws, from, to, cost, crate::AccelBounds::Full)
    }

    /// [`Graph::shortest_path_tree`] into a workspace-owned tree: the
    /// returned reference borrows the workspace and is overwritten by the
    /// next tree query on it.
    pub fn shortest_path_tree_in<'a, F>(
        &self,
        ws: &'a mut crate::SearchWorkspace,
        from: NodeId,
        cost: F,
    ) -> &'a crate::ShortestPathTree
    where
        F: FnMut(EdgeRef) -> Option<f64>,
    {
        crate::dijkstra::shortest_path_tree_in(self, ws, from, cost)
    }
}

impl crate::Topology for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_ {
        Graph::edges_of(self, node)
    }

    fn directed_edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        Graph::directed_edges(self)
    }

    fn endpoints(&self, id: ChannelId) -> Result<(NodeId, NodeId)> {
        Graph::endpoints(self, id)
    }
}

/// Iterator over the directed edges leaving one node: the node's CSR row
/// followed by its delta overlay, flagged entries skipped. Exact-size —
/// the number of live entries is the node's degree, read from the degree
/// table only when `len`/`size_hint` is actually called (so hot search
/// loops that just iterate touch nothing but offsets and entries).
#[derive(Clone, Debug)]
pub struct EdgesOf<'g> {
    csr: std::slice::Iter<'g, AdjEntry>,
    delta: std::slice::Iter<'g, AdjEntry>,
    from: NodeId,
    live_deg: &'g [u32],
    yielded: u32,
}

impl Iterator for EdgesOf<'_> {
    type Item = EdgeRef;

    #[inline]
    fn next(&mut self) -> Option<EdgeRef> {
        loop {
            let e = match self.csr.next() {
                Some(e) => e,
                None => self.delta.next()?,
            };
            if e.tag & SKIP == 0 {
                self.yielded += 1;
                return Some(EdgeRef {
                    id: ChannelId::new(e.tag),
                    from: self.from,
                    to: e.to,
                });
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let total = self
            .live_deg
            .get(self.from.index())
            .map_or(0, |&d| d as usize);
        let left = total - self.yielded as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for EdgesOf<'_> {}

pub use crate::path::Path;

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        // 0-1, 1-3, 0-2, 2-3
        let mut g = Graph::new(4);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        g.add_edge(NodeId::new(1), NodeId::new(3));
        g.add_edge(NodeId::new(0), NodeId::new(2));
        g.add_edge(NodeId::new(2), NodeId::new(3));
        g
    }

    #[test]
    fn construction_and_counts() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(NodeId::new(0)), 2);
        assert_eq!(g.degree(NodeId::new(3)), 2);
    }

    #[test]
    fn add_node_extends() {
        let mut g = diamond();
        let n = g.add_node();
        assert_eq!(n, NodeId::new(4));
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.degree(n), 0);
    }

    #[test]
    fn endpoints_and_other() {
        let g = diamond();
        let ch = ChannelId::new(0);
        assert_eq!(g.endpoints(ch).unwrap(), (NodeId::new(0), NodeId::new(1)));
        assert_eq!(
            g.other_endpoint(ch, NodeId::new(0)).unwrap(),
            NodeId::new(1)
        );
        assert_eq!(
            g.other_endpoint(ch, NodeId::new(1)).unwrap(),
            NodeId::new(0)
        );
        assert_eq!(
            g.other_endpoint(ch, NodeId::new(2)),
            Err(PcnError::UnknownNode(NodeId::new(2)))
        );
        assert_eq!(
            g.endpoints(ChannelId::new(99)),
            Err(PcnError::UnknownChannel(ChannelId::new(99)))
        );
    }

    #[test]
    fn adjacency_queries() {
        let g = diamond();
        assert!(g.has_edge_between(NodeId::new(0), NodeId::new(1)));
        assert!(!g.has_edge_between(NodeId::new(0), NodeId::new(3)));
        assert_eq!(
            g.edge_between(NodeId::new(0), NodeId::new(2)),
            Some(ChannelId::new(2))
        );
        assert_eq!(g.edge_between(NodeId::new(0), NodeId::new(3)), None);
        let mut nb: Vec<_> = g.neighbors(NodeId::new(0)).collect();
        nb.sort();
        assert_eq!(nb, vec![NodeId::new(1), NodeId::new(2)]);
    }

    #[test]
    fn out_edges_directed() {
        let g = diamond();
        let outs: Vec<_> = g.out_edges(NodeId::new(3)).collect();
        assert_eq!(outs.len(), 2);
        for e in outs {
            assert_eq!(e.from, NodeId::new(3));
            assert!(e.to == NodeId::new(1) || e.to == NodeId::new(2));
            assert_eq!(e.reversed().from, e.to);
            assert_eq!(e.reversed().id, e.id);
        }
    }

    #[test]
    fn directed_edges_doubles() {
        let g = diamond();
        assert_eq!(g.directed_edges().count(), 8);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new(2);
        let c1 = g.add_edge(NodeId::new(0), NodeId::new(1));
        let c2 = g.add_edge(NodeId::new(0), NodeId::new(1));
        assert_ne!(c1, c2);
        assert_eq!(g.degree(NodeId::new(0)), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId::new(1), NodeId::new(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_endpoint_panics() {
        let mut g = Graph::new(2);
        g.add_edge(NodeId::new(0), NodeId::new(5));
    }

    #[test]
    fn topology_epoch_tracks_mutations() {
        let mut g = Graph::new(2);
        assert_eq!(g.topology_epoch(), 0);
        g.add_edge(NodeId::new(0), NodeId::new(1));
        assert_eq!(g.topology_epoch(), 1);
        g.add_node();
        assert_eq!(g.topology_epoch(), 2);
        // Clones carry the value and then advance independently.
        let mut c = g.clone();
        c.add_node();
        assert_eq!(g.topology_epoch(), 2);
        assert_eq!(c.topology_epoch(), 3);
    }

    #[test]
    fn close_hides_channel_everywhere_but_endpoints() {
        let mut g = diamond();
        let ch = ChannelId::new(0); // 0-1
        let epoch = g.topology_epoch();
        g.close_channel(ch).unwrap();
        assert!(g.is_closed(ch));
        assert_eq!(g.topology_epoch(), epoch + 1);
        assert_eq!(g.open_edge_count(), 3);
        assert_eq!(g.edge_count(), 4, "the dense id space is untouched");
        // Adjacency-derived views no longer see the channel…
        assert!(!g.has_edge_between(NodeId::new(0), NodeId::new(1)));
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert!(g.out_edges(NodeId::new(0)).all(|e| e.id != ch));
        assert_eq!(g.directed_edges().count(), 6);
        assert!(g.open_edges().all(|c| c != ch));
        // …but endpoints still resolve (in-flight unwinding needs them).
        assert_eq!(g.endpoints(ch).unwrap(), (NodeId::new(0), NodeId::new(1)));
        // No path 0→1 except via 2-3.
        let (cost, _) = g
            .shortest_path(NodeId::new(0), NodeId::new(1), |_| Some(1.0))
            .expect("detour exists");
        assert_eq!(cost, 3.0);
        // Double close is an error.
        assert!(g.close_channel(ch).is_err());
    }

    #[test]
    fn reopen_restores_searchability() {
        let mut g = diamond();
        let ch = ChannelId::new(0);
        g.close_channel(ch).unwrap();
        let epoch = g.topology_epoch();
        g.reopen_channel(ch).unwrap();
        assert!(!g.is_closed(ch));
        assert_eq!(g.topology_epoch(), epoch + 1);
        assert_eq!(g.open_edge_count(), 4);
        assert!(g.has_edge_between(NodeId::new(0), NodeId::new(1)));
        let (cost, p) = g
            .shortest_path(NodeId::new(0), NodeId::new(1), |_| Some(1.0))
            .unwrap();
        assert_eq!(cost, 1.0);
        assert_eq!(p.channels(), [ch]);
        // Reopening an open channel is an error.
        assert!(g.reopen_channel(ch).is_err());
        assert!(g.reopen_channel(ChannelId::new(99)).is_err());
    }

    #[test]
    fn close_preserves_remaining_adjacency_order() {
        let mut g = Graph::new(3);
        let c0 = g.add_edge(NodeId::new(0), NodeId::new(1));
        let c1 = g.add_edge(NodeId::new(0), NodeId::new(2));
        let c2 = g.add_edge(NodeId::new(0), NodeId::new(1));
        g.close_channel(c1).unwrap();
        let order: Vec<ChannelId> = g.out_edges(NodeId::new(0)).map(|e| e.id).collect();
        assert_eq!(order, vec![c0, c2], "close keeps insertion order");
        g.reopen_channel(c1).unwrap();
        let order: Vec<ChannelId> = g.out_edges(NodeId::new(0)).map(|e| e.id).collect();
        assert_eq!(order, vec![c0, c2, c1], "reopen appends deterministically");
    }

    #[test]
    fn empty_graph_iterators() {
        let g = Graph::new(0);
        assert_eq!(g.nodes().count(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.degree(NodeId::new(0)), 0);
        assert_eq!(g.out_edges(NodeId::new(0)).count(), 0);
    }

    #[test]
    fn from_edges_matches_incremental_build() {
        let pairs: Vec<(NodeId, NodeId)> = vec![
            (NodeId::new(0), NodeId::new(1)),
            (NodeId::new(1), NodeId::new(3)),
            (NodeId::new(0), NodeId::new(2)),
            (NodeId::new(2), NodeId::new(3)),
            (NodeId::new(0), NodeId::new(1)), // parallel channel
        ];
        let bulk = Graph::from_edges(4, &pairs);
        let mut inc = Graph::new(4);
        for &(a, b) in &pairs {
            inc.add_edge(a, b);
        }
        assert_eq!(bulk.topology_epoch(), inc.topology_epoch());
        assert_eq!(bulk.edge_count(), inc.edge_count());
        for v in bulk.nodes() {
            assert_eq!(bulk.degree(v), inc.degree(v));
            let b: Vec<_> = bulk.out_edges(v).collect();
            let i: Vec<_> = inc.out_edges(v).collect();
            assert_eq!(b, i, "row order of node {v} must match add_edge order");
        }
        // Bulk build is already dense: no overlay entries.
        let stats = bulk.adjacency_stats();
        assert_eq!(stats.delta_entries, 0);
        assert_eq!(stats.csr_entries, 2 * pairs.len());
        assert_eq!(stats.entry_bytes, 8, "AdjEntry must stay 8 bytes");
    }

    #[test]
    fn compaction_preserves_order_and_bumps_epoch_once() {
        let mut g = Graph::new(3);
        let c0 = g.add_edge(NodeId::new(0), NodeId::new(1));
        let c1 = g.add_edge(NodeId::new(0), NodeId::new(2));
        let c2 = g.add_edge(NodeId::new(0), NodeId::new(1));
        g.close_channel(c1).unwrap();
        g.reopen_channel(c1).unwrap();
        let before: Vec<Vec<EdgeRef>> = g.nodes().map(|v| g.out_edges(v).collect()).collect();
        let epoch = g.topology_epoch();
        let compactions = g.compactions();
        g.compact();
        assert_eq!(g.topology_epoch(), epoch + 1, "exactly one epoch bump");
        assert_eq!(g.compactions(), compactions + 1);
        let after: Vec<Vec<EdgeRef>> = g.nodes().map(|v| g.out_edges(v).collect()).collect();
        assert_eq!(before, after, "compaction must not reorder visible entries");
        let stats = g.adjacency_stats();
        assert_eq!(stats.delta_entries, 0);
        assert_eq!(stats.flagged_entries, 0);
        assert_eq!(stats.csr_entries, 6);
        // A channel closed before compaction can still reopen after it
        // (its flagged entry is gone; reopen appends a fresh one).
        g.close_channel(c0).unwrap();
        g.compact();
        g.reopen_channel(c0).unwrap();
        let order: Vec<ChannelId> = g.out_edges(NodeId::new(0)).map(|e| e.id).collect();
        assert_eq!(order, vec![c2, c1, c0]);
        assert_eq!(g.degree(NodeId::new(0)), 3);
    }

    #[test]
    fn watermark_triggers_compaction_under_churn() {
        // 300 opens push 600 delta entries past the 256-entry floor.
        let mut g = Graph::new(2);
        for _ in 0..300 {
            g.add_edge(NodeId::new(0), NodeId::new(1));
        }
        assert!(g.compactions() > 0, "watermark must have fired");
        let stats = g.adjacency_stats();
        assert!(
            stats.delta_entries + stats.flagged_entries
                < COMPACT_MIN_OVERLAY.max(stats.csr_entries / 8) + 2,
            "overlay stays under the watermark"
        );
        // Every channel is still visible, in insertion order.
        let order: Vec<ChannelId> = g.out_edges(NodeId::new(0)).map(|e| e.id).collect();
        assert_eq!(order.len(), 300);
        assert!(order.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn edges_of_is_exact_size() {
        let mut g = diamond();
        let it = g.edges_of(NodeId::new(0));
        assert_eq!(it.len(), 2);
        assert_eq!(it.count(), 2);
        g.close_channel(ChannelId::new(0)).unwrap();
        let it = g.edges_of(NodeId::new(0));
        assert_eq!(it.len(), 1);
        assert_eq!(g.edges_of(NodeId::new(9)).len(), 0);
    }
}
