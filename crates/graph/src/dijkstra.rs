//! Dijkstra shortest paths with closure-supplied directed edge costs.
//!
//! Both entry points exist in two flavours: the classic allocating form
//! ([`crate::Graph::shortest_path`], [`crate::Graph::shortest_path_tree`]) and a
//! workspace form (`*_in`) that reuses the buffers of a
//! [`crate::SearchWorkspace`] so repeated queries run allocation-free.
//! The free functions are generic over [`Topology`], so the same
//! monomorphized loop runs against the CSR [`Graph`] and the `Vec<Vec>`
//! [`crate::ReferenceGraph`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pcn_types::{ChannelId, NodeId};

use crate::cost::Cost;
use crate::{EdgeRef, Path, SearchWorkspace, Topology};

/// Result of a single-source Dijkstra run: distances and a parent forest.
///
/// Produced by [`crate::Graph::shortest_path_tree`]; used by landmark routing and
/// the placement cost model (all-clients-to-candidate hop counts).
#[derive(Clone, Debug, Default)]
pub struct ShortestPathTree {
    pub(crate) source: NodeId,
    pub(crate) dist: Vec<f64>,
    pub(crate) parent: Vec<Option<(NodeId, ChannelId)>>,
}

impl ShortestPathTree {
    /// The source this tree was grown from.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Distance from the source to `node`; `None` if unreachable.
    pub fn distance(&self, node: NodeId) -> Option<f64> {
        self.dist
            .get(node.index())
            .copied()
            .filter(|d| d.is_finite())
    }

    /// Reconstructs the path from the source to `node`, if reachable.
    pub fn path_to(&self, node: NodeId) -> Option<Path> {
        self.distance(node)?;
        let mut rev_nodes = vec![node];
        let mut rev_chans = Vec::new();
        let mut cur = node;
        while let Some((prev, ch)) = self.parent.get(cur.index()).copied().flatten() {
            rev_nodes.push(prev);
            rev_chans.push(ch);
            cur = prev;
        }
        if cur != self.source {
            return None;
        }
        rev_nodes.reverse();
        rev_chans.reverse();
        Some(Path::new(rev_nodes, rev_chans))
    }

    /// Iterates over `(node, distance)` for every reachable node.
    pub fn reachable(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.dist
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .map(|(i, &d)| (NodeId::from_index(i), d))
    }
}

/// Reusable Dijkstra state: distance labels, parent forest, heap, plus a
/// recycled [`ShortestPathTree`] for the tree queries.
#[derive(Debug, Default)]
pub(crate) struct DijkstraScratch {
    pub(crate) dist: Vec<f64>,
    pub(crate) parent: Vec<Option<(NodeId, ChannelId)>>,
    pub(crate) heap: BinaryHeap<Reverse<(Cost, NodeId)>>,
    pub(crate) tree: ShortestPathTree,
    /// Monotone count of nodes settled (non-stale heap pops) by every
    /// search run on this scratch — the planner-observability feed behind
    /// `SearchWorkspace::nodes_settled`.
    pub(crate) settled: u64,
}

pub(crate) fn usable(cost: Option<f64>) -> Option<f64> {
    match cost {
        Some(c) if c.is_finite() && c >= 0.0 => Some(c),
        _ => None,
    }
}

/// Re-initializes `dist`/`parent` for `n` nodes without reallocating once
/// grown, and empties the heap (keeping its capacity).
pub(crate) fn reset(
    dist: &mut Vec<f64>,
    parent: &mut Vec<Option<(NodeId, ChannelId)>>,
    heap: &mut BinaryHeap<Reverse<(Cost, NodeId)>>,
    n: usize,
) {
    dist.clear();
    dist.resize(n, f64::INFINITY);
    parent.clear();
    parent.resize(n, None);
    heap.clear();
}

/// The core relaxation loop. `stop_at` enables the early exit of the
/// point-to-point query; `None` settles every reachable node. `settled`
/// is bumped once per settled node (an entry with a strictly smaller
/// label is never re-pushed, so non-stale pops are exactly settles).
#[allow(clippy::too_many_arguments)]
pub(crate) fn relax<G, F>(
    g: &G,
    from: NodeId,
    stop_at: Option<NodeId>,
    mut cost: F,
    dist: &mut [f64],
    parent: &mut [Option<(NodeId, ChannelId)>],
    heap: &mut BinaryHeap<Reverse<(Cost, NodeId)>>,
    settled: &mut u64,
) where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    if from.index() >= dist.len() {
        return;
    }
    dist[from.index()] = 0.0;
    heap.push(Reverse((Cost(0.0), from)));
    while let Some(Reverse((Cost(d), u))) = heap.pop() {
        if d > dist[u.index()] {
            continue; // stale entry
        }
        *settled += 1;
        if stop_at == Some(u) {
            break;
        }
        for e in g.out_edges(u) {
            let Some(w) = usable(cost(e)) else { continue };
            let nd = d + w;
            if nd < dist[e.to.index()] {
                dist[e.to.index()] = nd;
                parent[e.to.index()] = Some((u, e.id));
                heap.push(Reverse((Cost(nd), e.to)));
            }
        }
    }
    heap.clear();
}

pub(crate) fn reconstruct(
    from: NodeId,
    to: NodeId,
    parent: &[Option<(NodeId, ChannelId)>],
) -> Option<Path> {
    let mut rev_nodes = vec![to];
    let mut rev_chans = Vec::new();
    let mut cur = to;
    while let Some((prev, ch)) = parent[cur.index()] {
        rev_nodes.push(prev);
        rev_chans.push(ch);
        cur = prev;
    }
    if cur != from {
        return None;
    }
    rev_nodes.reverse();
    rev_chans.reverse();
    Some(Path::new(rev_nodes, rev_chans))
}

/// Dijkstra from `from` to all reachable nodes of any [`Topology`]; the
/// free-function form of [`crate::Graph::shortest_path_tree`].
pub fn shortest_path_tree<G, F>(g: &G, from: NodeId, cost: F) -> ShortestPathTree
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    let n = g.node_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut parent: Vec<Option<(NodeId, ChannelId)>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    let mut settled = 0;
    relax(
        g,
        from,
        None,
        cost,
        &mut dist,
        &mut parent,
        &mut heap,
        &mut settled,
    );
    ShortestPathTree {
        source: from,
        dist,
        parent,
    }
}

/// [`shortest_path_tree`] into a workspace-owned tree; the free-function
/// form of [`crate::Graph::shortest_path_tree_in`].
pub fn shortest_path_tree_in<'a, G, F>(
    g: &G,
    ws: &'a mut SearchWorkspace,
    from: NodeId,
    cost: F,
) -> &'a ShortestPathTree
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    let s = &mut ws.dijkstra;
    let n = g.node_count();
    reset(&mut s.tree.dist, &mut s.tree.parent, &mut s.heap, n);
    s.tree.source = from;
    relax(
        g,
        from,
        None,
        cost,
        &mut s.tree.dist,
        &mut s.tree.parent,
        &mut s.heap,
        &mut s.settled,
    );
    &s.tree
}

/// Point-to-point Dijkstra on any [`Topology`]; the free-function form of
/// [`crate::Graph::shortest_path`].
pub fn shortest_path<G, F>(g: &G, from: NodeId, to: NodeId, cost: F) -> Option<(f64, Path)>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    let mut scratch = DijkstraScratch::default();
    shortest_path_scratch(g, &mut scratch, from, to, cost)
}

/// [`shortest_path`] on reusable workspace buffers; the free-function
/// form of [`crate::Graph::shortest_path_in`].
pub fn shortest_path_in<G, F>(
    g: &G,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    cost: F,
) -> Option<(f64, Path)>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    shortest_path_scratch(g, &mut ws.dijkstra, from, to, cost)
}

fn shortest_path_scratch<G, F>(
    g: &G,
    s: &mut DijkstraScratch,
    from: NodeId,
    to: NodeId,
    cost: F,
) -> Option<(f64, Path)>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    // Early-exit Dijkstra: stop as soon as `to` is settled.
    let n = g.node_count();
    if from.index() >= n || to.index() >= n {
        return None;
    }
    if from == to {
        return Some((0.0, Path::trivial(from)));
    }
    reset(&mut s.dist, &mut s.parent, &mut s.heap, n);
    relax(
        g,
        from,
        Some(to),
        cost,
        &mut s.dist,
        &mut s.parent,
        &mut s.heap,
        &mut s.settled,
    );
    if !s.dist[to.index()].is_finite() {
        return None;
    }
    let path = reconstruct(from, to, &s.parent).expect("finite distance implies a parent chain");
    Some((s.dist[to.index()], path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Weighted diamond: 0-1 (1), 1-3 (1), 0-2 (1), 2-3 (5).
    fn weighted_diamond() -> (Graph, Vec<f64>) {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(3));
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(3));
        (g, vec![1.0, 1.0, 1.0, 5.0])
    }

    #[test]
    fn picks_cheaper_route() {
        let (g, w) = weighted_diamond();
        let (cost, path) = g
            .shortest_path(n(0), n(3), |e| Some(w[e.id.index()]))
            .unwrap();
        assert_eq!(cost, 2.0);
        assert_eq!(path.nodes(), &[n(0), n(1), n(3)]);
        path.validate(&g).unwrap();
    }

    #[test]
    fn respects_unusable_edges() {
        let (g, w) = weighted_diamond();
        // Block channel 0 (0-1); forced over the expensive branch.
        let (cost, path) = g
            .shortest_path(n(0), n(3), |e| {
                if e.id.index() == 0 {
                    None
                } else {
                    Some(w[e.id.index()])
                }
            })
            .unwrap();
        assert_eq!(cost, 6.0);
        assert_eq!(path.nodes(), &[n(0), n(2), n(3)]);
    }

    #[test]
    fn directional_costs() {
        // Cost depends on direction: 0→1 is cheap, 1→0 is unusable.
        let mut g = Graph::new(2);
        g.add_edge(n(0), n(1));
        let fwd = g.shortest_path(n(0), n(1), |e| (e.from == n(0)).then_some(1.0));
        let bwd = g.shortest_path(n(1), n(0), |e| (e.from == n(0)).then_some(1.0));
        assert!(fwd.is_some());
        assert!(bwd.is_none());
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        assert!(g.shortest_path(n(0), n(2), |_| Some(1.0)).is_none());
        assert!(g.shortest_path(n(0), n(9), |_| Some(1.0)).is_none());
    }

    #[test]
    fn self_path_is_trivial() {
        let g = Graph::new(1);
        let (c, p) = g.shortest_path(n(0), n(0), |_| Some(1.0)).unwrap();
        assert_eq!(c, 0.0);
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn negative_and_nan_costs_are_unusable() {
        let mut g = Graph::new(2);
        g.add_edge(n(0), n(1));
        assert!(g.shortest_path(n(0), n(1), |_| Some(-1.0)).is_none());
        assert!(g.shortest_path(n(0), n(1), |_| Some(f64::NAN)).is_none());
        assert!(g
            .shortest_path(n(0), n(1), |_| Some(f64::INFINITY))
            .is_none());
    }

    #[test]
    fn tree_distances_and_paths() {
        let (g, w) = weighted_diamond();
        let tree = g.shortest_path_tree(n(0), |e| Some(w[e.id.index()]));
        assert_eq!(tree.source(), n(0));
        assert_eq!(tree.distance(n(0)), Some(0.0));
        assert_eq!(tree.distance(n(3)), Some(2.0));
        let p = tree.path_to(n(3)).unwrap();
        assert_eq!(p.nodes(), &[n(0), n(1), n(3)]);
        assert_eq!(tree.reachable().count(), 4);
    }

    #[test]
    fn tree_unreachable() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        let tree = g.shortest_path_tree(n(0), |_| Some(1.0));
        assert_eq!(tree.distance(n(2)), None);
        assert!(tree.path_to(n(2)).is_none());
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        let (g, w) = weighted_diamond();
        let mut ws = SearchWorkspace::new();
        for _ in 0..5 {
            let fresh = g.shortest_path(n(0), n(3), |e| Some(w[e.id.index()]));
            let reused = g.shortest_path_in(&mut ws, n(0), n(3), |e| Some(w[e.id.index()]));
            assert_eq!(fresh, reused);
            // The blocked query must not see stale state from the run above.
            let blocked = g.shortest_path_in(&mut ws, n(0), n(3), |e| {
                (e.id.index() != 0).then(|| w[e.id.index()])
            });
            assert_eq!(blocked.unwrap().0, 6.0);
        }
    }

    #[test]
    fn workspace_tree_matches_owned_tree() {
        let (g, w) = weighted_diamond();
        let mut ws = SearchWorkspace::new();
        // Warm the workspace on a different source first.
        let _ = g.shortest_path_tree_in(&mut ws, n(3), |e| Some(w[e.id.index()]));
        let owned = g.shortest_path_tree(n(0), |e| Some(w[e.id.index()]));
        let reused = g.shortest_path_tree_in(&mut ws, n(0), |e| Some(w[e.id.index()]));
        assert_eq!(reused.source(), owned.source());
        for v in g.nodes() {
            assert_eq!(reused.distance(v), owned.distance(v));
            assert_eq!(
                reused.path_to(v).map(|p| p.nodes().to_vec()),
                owned.path_to(v).map(|p| p.nodes().to_vec())
            );
        }
    }

    #[test]
    fn workspace_survives_graph_size_changes() {
        let mut ws = SearchWorkspace::new();
        let (big, w) = weighted_diamond();
        assert!(big
            .shortest_path_in(&mut ws, n(0), n(3), |e| Some(w[e.id.index()]))
            .is_some());
        // A smaller graph afterwards: buffers shrink logically, no stale
        // out-of-range reads.
        let mut small = Graph::new(2);
        small.add_edge(n(0), n(1));
        let got = small.shortest_path_in(&mut ws, n(0), n(1), |_| Some(2.0));
        assert_eq!(got.unwrap().0, 2.0);
        assert!(small
            .shortest_path_in(&mut ws, n(0), n(9), |_| Some(1.0))
            .is_none());
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        // Exhaustive DFS comparison on small random weighted graphs.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut ws = SearchWorkspace::new();
        for _ in 0..30 {
            let nn = rng.random_range(2..7usize);
            let mut g = Graph::new(nn);
            let mut weights = Vec::new();
            for a in 0..nn {
                for b in (a + 1)..nn {
                    if rng.random_bool(0.6) {
                        g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
                        weights.push(rng.random_range(1..10) as f64);
                    }
                }
            }
            let from = NodeId::new(0);
            let to = NodeId::from_index(nn - 1);
            let dij = g
                .shortest_path_in(&mut ws, from, to, |e| Some(weights[e.id.index()]))
                .map(|(c, _)| c);
            let brute = brute_force(&g, &weights, from, to);
            match (dij, brute) {
                (None, None) => {}
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "dijkstra {a} vs brute {b}"),
                other => panic!("reachability mismatch: {other:?}"),
            }
        }
    }

    fn brute_force(g: &Graph, w: &[f64], from: NodeId, to: NodeId) -> Option<f64> {
        fn dfs(
            g: &Graph,
            w: &[f64],
            cur: NodeId,
            to: NodeId,
            visited: &mut Vec<bool>,
            acc: f64,
            best: &mut Option<f64>,
        ) {
            if cur == to {
                *best = Some(best.map_or(acc, |b: f64| b.min(acc)));
                return;
            }
            for e in g.out_edges(cur) {
                if !visited[e.to.index()] {
                    visited[e.to.index()] = true;
                    dfs(g, w, e.to, to, visited, acc + w[e.id.index()], best);
                    visited[e.to.index()] = false;
                }
            }
        }
        let mut visited = vec![false; g.node_count()];
        visited[from.index()] = true;
        let mut best = None;
        dfs(g, w, from, to, &mut visited, 0.0, &mut best);
        best
    }
}
