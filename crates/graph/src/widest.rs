//! Widest (maximum-bottleneck) paths.
//!
//! Table II shows EDW (edge-disjoint *widest* paths) is Splicer's best path
//! type: with heavy-tailed channel sizes, maximizing the bottleneck funds on
//! a path utilizes network capacity best. The widest path maximizes
//! `min(width(e) for e in path)` and is computed with a Dijkstra variant
//! (max-heap over bottleneck widths).

use std::collections::BinaryHeap;

use pcn_types::{ChannelId, NodeId};

use crate::cost::Cost;
use crate::{EdgeRef, Path, SearchWorkspace, Topology};

/// Reusable widest-path state: `(bottleneck, hops)` labels, parent
/// forest and the max-heap.
#[derive(Debug, Default)]
pub(crate) struct WidestScratch {
    best: Vec<(f64, u32)>,
    parent: Vec<Option<(NodeId, ChannelId)>>,
    heap: BinaryHeap<(Cost, std::cmp::Reverse<u32>, NodeId)>,
}

/// Maximum-bottleneck path from `from` to `to`.
///
/// `width` returns the usable width of a directed edge (`None`/non-positive
/// = unusable). Ties between equally wide paths are broken towards fewer
/// hops. Returns `(bottleneck, path)` or `None` when unreachable.
///
/// # Examples
///
/// ```
/// use pcn_graph::{widest_path, Graph};
/// use pcn_types::NodeId;
///
/// let mut g = Graph::new(3);
/// let thin = g.add_edge(NodeId::new(0), NodeId::new(2));
/// let a = g.add_edge(NodeId::new(0), NodeId::new(1));
/// let b = g.add_edge(NodeId::new(1), NodeId::new(2));
/// let widths = move |e: pcn_graph::EdgeRef| {
///     Some(if e.id == thin { 1.0 } else { 10.0 })
/// };
/// let (w, path) = widest_path(&g, NodeId::new(0), NodeId::new(2), widths).unwrap();
/// assert_eq!(w, 10.0);
/// assert_eq!(path.hops(), 2); // takes the wide two-hop route
/// # let _ = (a, b);
/// ```
pub fn widest_path<G, F>(g: &G, from: NodeId, to: NodeId, width: F) -> Option<(f64, Path)>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    widest_path_scratch(g, &mut WidestScratch::default(), from, to, width)
}

/// [`widest_path`] running on the reusable buffers of a
/// [`SearchWorkspace`]: repeated calls are allocation-free (apart from
/// the returned [`Path`]) and bit-identical to the allocating form.
pub fn widest_path_in<G, F>(
    g: &G,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    width: F,
) -> Option<(f64, Path)>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    widest_path_scratch(g, &mut ws.widest, from, to, width)
}

fn widest_path_scratch<G, F>(
    g: &G,
    s: &mut WidestScratch,
    from: NodeId,
    to: NodeId,
    mut width: F,
) -> Option<(f64, Path)>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    let n = g.node_count();
    if from.index() >= n || to.index() >= n {
        return None;
    }
    if from == to {
        return Some((f64::INFINITY, Path::trivial(from)));
    }
    // best[v] = (bottleneck, hops) of the best known path; we maximize
    // bottleneck, minimize hops on ties.
    s.best.clear();
    s.best.resize(n, (0.0, u32::MAX));
    s.parent.clear();
    s.parent.resize(n, None);
    s.heap.clear();
    let best = &mut s.best;
    let parent = &mut s.parent;
    let heap = &mut s.heap;
    best[from.index()] = (f64::INFINITY, 0);
    heap.push((Cost(f64::INFINITY), std::cmp::Reverse(0), from));
    while let Some((Cost(w), std::cmp::Reverse(h), u)) = heap.pop() {
        let (bw, bh) = best[u.index()];
        if w < bw || (w == bw && h > bh) {
            continue; // stale
        }
        if u == to {
            break;
        }
        for e in g.out_edges(u) {
            let Some(ew) = width(e) else { continue };
            if !(ew.is_finite() && ew > 0.0) && ew != f64::INFINITY {
                continue;
            }
            let nw = w.min(ew);
            if nw <= 0.0 {
                continue;
            }
            let nh = h + 1;
            let (cw, ch) = best[e.to.index()];
            if nw > cw || (nw == cw && nh < ch) {
                best[e.to.index()] = (nw, nh);
                parent[e.to.index()] = Some((u, e.id));
                heap.push((Cost(nw), std::cmp::Reverse(nh), e.to));
            }
        }
    }
    let (bw, _) = best[to.index()];
    if bw <= 0.0 {
        return None;
    }
    let mut rev_nodes = vec![to];
    let mut rev_chans = Vec::new();
    let mut cur = to;
    while let Some((prev, ch)) = parent[cur.index()] {
        rev_nodes.push(prev);
        rev_chans.push(ch);
        cur = prev;
    }
    if cur != from {
        return None;
    }
    rev_nodes.reverse();
    rev_chans.reverse();
    Some((bw, Path::new(rev_nodes, rev_chans)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn prefers_wider_longer_path() {
        // direct 0-3 width 2; 0-1-2-3 each width 9.
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(3)); // ch0
        g.add_edge(n(0), n(1)); // ch1
        g.add_edge(n(1), n(2)); // ch2
        g.add_edge(n(2), n(3)); // ch3
        let w = [2.0, 9.0, 9.0, 9.0];
        let (bw, path) = widest_path(&g, n(0), n(3), |e| Some(w[e.id.index()])).unwrap();
        assert_eq!(bw, 9.0);
        assert_eq!(path.hops(), 3);
    }

    #[test]
    fn tie_break_prefers_fewer_hops() {
        // Two equally wide routes; direct should win.
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(2)); // ch0 width 5
        g.add_edge(n(0), n(1)); // ch1 width 5
        g.add_edge(n(1), n(2)); // ch2 width 5
        let (bw, path) = widest_path(&g, n(0), n(2), |_| Some(5.0)).unwrap();
        assert_eq!(bw, 5.0);
        assert_eq!(path.hops(), 1);
    }

    #[test]
    fn directional_widths() {
        let mut g = Graph::new(2);
        g.add_edge(n(0), n(1));
        let w = |e: EdgeRef| (e.from == n(0)).then_some(4.0);
        assert!(widest_path(&g, n(0), n(1), w).is_some());
        assert!(widest_path(&g, n(1), n(0), w).is_none());
    }

    #[test]
    fn unreachable_and_degenerate() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        assert!(widest_path(&g, n(0), n(2), |_| Some(1.0)).is_none());
        assert!(widest_path(&g, n(0), n(7), |_| Some(1.0)).is_none());
        let (w, p) = widest_path(&g, n(0), n(0), |_| Some(1.0)).unwrap();
        assert_eq!(w, f64::INFINITY);
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn zero_width_edges_unusable() {
        let mut g = Graph::new(2);
        g.add_edge(n(0), n(1));
        assert!(widest_path(&g, n(0), n(1), |_| Some(0.0)).is_none());
        assert!(widest_path(&g, n(0), n(1), |_| Some(-3.0)).is_none());
        assert!(widest_path(&g, n(0), n(1), |_| None).is_none());
    }

    #[test]
    fn workspace_variant_matches_allocating_form() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(3));
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        let w = [2.0, 9.0, 9.0, 9.0];
        let mut ws = SearchWorkspace::new();
        for _ in 0..4 {
            let fresh = widest_path(&g, n(0), n(3), |e| Some(w[e.id.index()]));
            let reused = widest_path_in(&g, &mut ws, n(0), n(3), |e| Some(w[e.id.index()]));
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn matches_bruteforce_bottleneck() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let nn = rng.random_range(2..7usize);
            let mut g = Graph::new(nn);
            let mut widths = Vec::new();
            for a in 0..nn {
                for b in (a + 1)..nn {
                    if rng.random_bool(0.6) {
                        g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
                        widths.push(rng.random_range(1..20) as f64);
                    }
                }
            }
            let from = NodeId::new(0);
            let to = NodeId::from_index(nn - 1);
            let got = widest_path(&g, from, to, |e| Some(widths[e.id.index()])).map(|(w, _)| w);
            let want = brute_widest(&g, &widths, from, to);
            match (got, want) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_eq!(a, b),
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    fn brute_widest(g: &Graph, w: &[f64], from: NodeId, to: NodeId) -> Option<f64> {
        fn dfs(
            g: &Graph,
            w: &[f64],
            cur: NodeId,
            to: NodeId,
            visited: &mut Vec<bool>,
            bottleneck: f64,
            best: &mut Option<f64>,
        ) {
            if cur == to {
                *best = Some(best.map_or(bottleneck, |b: f64| b.max(bottleneck)));
                return;
            }
            for e in g.out_edges(cur) {
                if !visited[e.to.index()] {
                    visited[e.to.index()] = true;
                    dfs(
                        g,
                        w,
                        e.to,
                        to,
                        visited,
                        bottleneck.min(w[e.id.index()]),
                        best,
                    );
                    visited[e.to.index()] = false;
                }
            }
        }
        let mut visited = vec![false; g.node_count()];
        visited[from.index()] = true;
        let mut best = None;
        dfs(g, w, from, to, &mut visited, f64::INFINITY, &mut best);
        best
    }
}
