//! Yen's algorithm for loopless k-shortest paths (KSP in Table II).

use std::collections::HashSet;

use pcn_types::{ChannelId, NodeId};

use crate::{EdgeRef, Path, SearchWorkspace, Topology};

/// Up to `k` loopless shortest paths from `from` to `to`, cheapest first.
///
/// Classic Yen construction: each candidate is a deviation from an already
/// accepted path, computed with the deviation's root edges removed and the
/// root's prefix nodes banned. Returns fewer than `k` paths when the graph
/// runs out of distinct loopless routes.
///
/// # Examples
///
/// ```
/// use pcn_graph::{k_shortest_paths, Graph};
/// use pcn_types::NodeId;
///
/// let mut g = Graph::new(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(3));
/// g.add_edge(NodeId::new(0), NodeId::new(2));
/// g.add_edge(NodeId::new(2), NodeId::new(3));
/// let paths = k_shortest_paths(&g, NodeId::new(0), NodeId::new(3), 3, |_| Some(1.0));
/// assert_eq!(paths.len(), 2); // only two loopless routes exist
/// ```
pub fn k_shortest_paths<G, F>(g: &G, from: NodeId, to: NodeId, k: usize, cost: F) -> Vec<Path>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    k_shortest_paths_in(g, &mut SearchWorkspace::new(), from, to, k, cost)
}

/// [`k_shortest_paths`] with the inner Dijkstra runs executed on a
/// reusable [`SearchWorkspace`]. Yen's algorithm is a loop of shortest-
/// path queries, so the workspace removes the dominant allocations of
/// repeated KSP calls; results are bit-identical to the allocating form.
pub fn k_shortest_paths_in<G, F>(
    g: &G,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    k: usize,
    cost: F,
) -> Vec<Path>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    k_shortest_paths_until_in(g, ws, from, to, k, cost, |_| false)
}

/// [`k_shortest_paths_in`] with an early-stop hook: `until` sees each
/// accepted path in Yen order and returns `true` to stop generating.
///
/// The result is always a **prefix** of the full Yen sequence, so a
/// caller that can prove its selection is already decided (e.g. the
/// bottleneck-ranked top-k of `PathSelect::Heuristic` once `k` paths at
/// the maximum attainable width have been seen) skips the remaining —
/// and most expensive — candidate rounds without changing what it picks.
pub fn k_shortest_paths_until_in<G, F, U>(
    g: &G,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    k: usize,
    cost: F,
    until: U,
) -> Vec<Path>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
    U: FnMut(&Path) -> bool,
{
    yen_core(
        g,
        ws,
        from,
        to,
        k,
        cost,
        |g, ws, s, t, c| crate::dijkstra::shortest_path_in(g, ws, s, t, c),
        until,
    )
}

/// The Yen loop, parameterized over the single-pair search so the
/// goal-directed variant (`crate::k_shortest_paths_accel_in`) reuses the
/// exact candidate-generation order. The `&mut dyn FnMut` cost keeps the
/// search generic without monomorphizing over every spur-ban closure.
#[allow(clippy::too_many_arguments)]
pub(crate) fn yen_core<G, F, S, U>(
    g: &G,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    k: usize,
    mut cost: F,
    mut search: S,
    mut until: U,
) -> Vec<Path>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
    S: FnMut(
        &G,
        &mut SearchWorkspace,
        NodeId,
        NodeId,
        &mut dyn FnMut(EdgeRef) -> Option<f64>,
    ) -> Option<(f64, Path)>,
    U: FnMut(&Path) -> bool,
{
    if k == 0 {
        return Vec::new();
    }
    let Some((first_cost, first)) = search(g, ws, from, to, &mut cost) else {
        return Vec::new();
    };
    let mut accepted: Vec<(f64, Path)> = vec![(first_cost, first)];
    // Candidate set; keyed by node sequence to avoid duplicates.
    let mut candidates: Vec<(f64, Path)> = Vec::new();
    let mut seen: HashSet<Vec<NodeId>> = HashSet::new();
    seen.insert(accepted[0].1.nodes().to_vec());
    if until(&accepted[0].1) {
        return accepted.into_iter().map(|(_, p)| p).collect();
    }

    while accepted.len() < k {
        let (_, last) = accepted.last().expect("accepted is non-empty").clone();
        // Deviate at every node of the last accepted path except the target.
        for i in 0..last.hops() {
            let spur_node = last.nodes()[i];
            let root = last.prefix(i);
            // Channels to ban: the edge each accepted/candidate path with the
            // same root takes out of the spur node.
            let mut banned_channels: HashSet<ChannelId> = HashSet::new();
            for (_, p) in accepted.iter().chain(candidates.iter()) {
                if p.hops() > i && p.nodes()[..=i] == root.nodes()[..] {
                    banned_channels.insert(p.channels()[i]);
                }
            }
            // Nodes on the root (except the spur node) are banned to keep
            // paths loopless.
            let banned_nodes: HashSet<NodeId> = root.nodes()[..i].iter().copied().collect();
            let spur = search(g, ws, spur_node, to, &mut |e| {
                if banned_channels.contains(&e.id)
                    || banned_nodes.contains(&e.to)
                    || banned_nodes.contains(&e.from)
                {
                    None
                } else {
                    cost(e)
                }
            });
            if let Some((_, spur_path)) = spur {
                let total = root.clone().join(spur_path);
                if seen.insert(total.nodes().to_vec()) {
                    let total_cost: f64 = total
                        .hops_iter()
                        .map(|(f, c, t)| {
                            cost(EdgeRef {
                                id: c,
                                from: f,
                                to: t,
                            })
                            .unwrap_or(f64::INFINITY)
                        })
                        .sum();
                    if total_cost.is_finite() {
                        candidates.push((total_cost, total));
                    }
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Pop the cheapest candidate.
        let best_idx = candidates
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.0.total_cmp(&b.0))
            .map(|(i, _)| i)
            .expect("non-empty");
        accepted.push(candidates.swap_remove(best_idx));
        if until(&accepted.last().expect("just pushed").1) {
            break;
        }
    }
    accepted.into_iter().map(|(_, p)| p).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Classic Yen example graph (weighted, 6 nodes).
    fn yen_graph() -> (Graph, Vec<f64>) {
        // c=0:C-D(3) 1:C-E(2) 2:D-F(4) 3:E-D(1) 4:E-F(2) 5:E-G(3) 6:F-G(2) 7:F-H(1) 8:G-H(2)
        // Node map: C=0 D=1 E=2 F=3 G=4 H=5
        let mut g = Graph::new(6);
        let mut w = Vec::new();
        let add = |g: &mut Graph, a: u32, b: u32, weight: f64, w: &mut Vec<f64>| {
            g.add_edge(n(a), n(b));
            w.push(weight);
        };
        add(&mut g, 0, 1, 3.0, &mut w);
        add(&mut g, 0, 2, 2.0, &mut w);
        add(&mut g, 1, 3, 4.0, &mut w);
        add(&mut g, 2, 1, 1.0, &mut w);
        add(&mut g, 2, 3, 2.0, &mut w);
        add(&mut g, 2, 4, 3.0, &mut w);
        add(&mut g, 3, 4, 2.0, &mut w);
        add(&mut g, 3, 5, 1.0, &mut w);
        add(&mut g, 4, 5, 2.0, &mut w);
        (g, w)
    }

    fn path_cost(p: &Path, w: &[f64]) -> f64 {
        p.channels().iter().map(|c| w[c.index()]).sum()
    }

    #[test]
    fn yen_classic_example() {
        let (g, w) = yen_graph();
        let paths = k_shortest_paths(&g, n(0), n(5), 3, |e| Some(w[e.id.index()]));
        assert_eq!(paths.len(), 3);
        // In the undirected variant of the classic instance the best path is
        // C-E-F-H = 5, followed by two cost-7 paths (C-E-G-H and C-D-E-F-H).
        assert_eq!(paths[0].nodes(), &[n(0), n(2), n(3), n(5)]);
        assert_eq!(path_cost(&paths[0], &w), 5.0);
        assert_eq!(path_cost(&paths[1], &w), 7.0);
        assert_eq!(path_cost(&paths[2], &w), 7.0);
    }

    #[test]
    fn costs_nondecreasing_and_paths_distinct() {
        let (g, w) = yen_graph();
        let paths = k_shortest_paths(&g, n(0), n(5), 10, |e| Some(w[e.id.index()]));
        let costs: Vec<f64> = paths.iter().map(|p| path_cost(p, &w)).collect();
        for pair in costs.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-9);
        }
        let mut seqs: Vec<_> = paths.iter().map(|p| p.nodes().to_vec()).collect();
        seqs.sort();
        seqs.dedup();
        assert_eq!(seqs.len(), paths.len());
        for p in &paths {
            assert!(!p.has_node_cycle());
            p.validate(&g).unwrap();
            assert_eq!(p.source(), n(0));
            assert_eq!(p.target(), n(5));
        }
    }

    #[test]
    fn fewer_routes_than_k() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let paths = k_shortest_paths(&g, n(0), n(2), 5, |_| Some(1.0));
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn disconnected_returns_empty() {
        let g = Graph::new(3);
        assert!(k_shortest_paths(&g, n(0), n(2), 3, |_| Some(1.0)).is_empty());
    }

    #[test]
    fn k_zero_returns_empty() {
        let (g, w) = yen_graph();
        assert!(k_shortest_paths(&g, n(0), n(5), 0, |e| Some(w[e.id.index()])).is_empty());
    }

    #[test]
    fn workspace_variant_matches_allocating_form() {
        let (g, w) = yen_graph();
        let mut ws = SearchWorkspace::new();
        for _ in 0..3 {
            let fresh = k_shortest_paths(&g, n(0), n(5), 4, |e| Some(w[e.id.index()]));
            let reused = k_shortest_paths_in(&g, &mut ws, n(0), n(5), 4, |e| Some(w[e.id.index()]));
            assert_eq!(fresh.len(), reused.len());
            for (a, b) in fresh.iter().zip(&reused) {
                assert_eq!(a.nodes(), b.nodes());
                assert_eq!(a.channels(), b.channels());
            }
        }
    }

    #[test]
    fn until_stops_with_a_prefix_of_the_full_sequence() {
        let (g, w) = yen_graph();
        let full = k_shortest_paths(&g, n(0), n(5), 5, |e| Some(w[e.id.index()]));
        assert!(full.len() >= 3);
        let mut ws = SearchWorkspace::new();
        for stop_after in 1..=full.len() {
            let mut seen = 0;
            let cut = k_shortest_paths_until_in(
                &g,
                &mut ws,
                n(0),
                n(5),
                5,
                |e| Some(w[e.id.index()]),
                |_| {
                    seen += 1;
                    seen >= stop_after
                },
            );
            assert_eq!(cut.len(), stop_after);
            assert_eq!(&full[..stop_after], &cut[..]);
        }
    }

    #[test]
    fn parallel_edges_count_as_distinct_paths() {
        let mut g = Graph::new(2);
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(1));
        let paths = k_shortest_paths(&g, n(0), n(1), 5, |e| Some(1.0 + e.id.index() as f64));
        // Both parallel channels give the same *node* sequence; Yen treats
        // paths as node sequences, so only one survives. This documents the
        // behaviour relied upon by the routing layer.
        assert_eq!(paths.len(), 1);
    }
}
