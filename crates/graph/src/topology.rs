//! The [`Topology`] abstraction every search algorithm runs against.
//!
//! All six search families in this crate (Dijkstra, BFS, widest, Yen,
//! edge-disjoint, max-flow) are generic over this trait rather than the
//! concrete [`crate::Graph`]. Two implementations exist:
//!
//! * [`crate::Graph`] — the production CSR layout (cache-dense, churn
//!   absorbing; see the crate docs' *memory layout* section), and
//! * [`crate::ReferenceGraph`] — the straightforward `Vec<Vec<…>>`
//!   adjacency the CSR layout replaced, kept as an executable
//!   specification of neighbor iteration order.
//!
//! Running the *same* monomorphized algorithm code over both is what lets
//! the equivalence tests and the layout benchmarks compare the layouts
//! honestly: any divergence is the data structure's fault, never the
//! algorithm's.

use pcn_types::{NodeId, Result};

use crate::EdgeRef;

/// A node/channel topology searchable by this crate's algorithms.
///
/// The contract mirrors [`crate::Graph`]'s semantics exactly:
///
/// * node ids are dense `0..node_count()`;
/// * [`Topology::out_edges`] yields the directed edges leaving a node in
///   a deterministic order — channels in insertion order, with a closed
///   channel's entry removed in place (order of the survivors preserved)
///   and a reopened channel appended at the end;
/// * [`Topology::directed_edges`] yields both directions of every *open*
///   channel, ascending by channel id;
/// * [`Topology::endpoints`] answers for closed channels too (the dense
///   id space outlives closure).
pub trait Topology {
    /// Number of nodes (ids are dense `0..node_count()`).
    fn node_count(&self) -> usize;

    /// Directed edges leaving `node`, in deterministic adjacency order.
    /// Out-of-range nodes yield an empty iterator.
    fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeRef> + '_;

    /// Both directed views of every open channel, ascending channel id.
    fn directed_edges(&self) -> impl Iterator<Item = EdgeRef> + '_;

    /// Endpoints of channel `id` in insertion order (open or closed).
    ///
    /// # Errors
    ///
    /// `PcnError::UnknownChannel` if the channel does not exist.
    fn endpoints(&self, id: pcn_types::ChannelId) -> Result<(NodeId, NodeId)>;
}
