//! Edge-disjoint path sets (EDS and EDW in Table II).
//!
//! Both are computed greedily: find the best path under the current cost /
//! width function, remove its channels, repeat up to `k` times. Greedy
//! edge-disjoint shortest paths is the standard construction used by PCN
//! routers (channels are removed in *both* directions, since a channel's
//! funds are shared infrastructure).

use std::collections::HashSet;

use pcn_types::{ChannelId, NodeId};

use crate::{widest_path_in, EdgeRef, Path, SearchWorkspace, Topology};

/// Up to `k` edge-disjoint shortest paths, found greedily (EDS).
///
/// Paths are returned in discovery order (shortest first). Fewer than `k`
/// paths are returned when the graph is exhausted.
///
/// # Examples
///
/// ```
/// use pcn_graph::{edge_disjoint_shortest_paths, Graph};
/// use pcn_types::NodeId;
///
/// let mut g = Graph::new(4);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(3));
/// g.add_edge(NodeId::new(0), NodeId::new(2));
/// g.add_edge(NodeId::new(2), NodeId::new(3));
/// let paths = edge_disjoint_shortest_paths(&g, NodeId::new(0), NodeId::new(3), 5, |_| Some(1.0));
/// assert_eq!(paths.len(), 2);
/// ```
pub fn edge_disjoint_shortest_paths<G, F>(
    g: &G,
    from: NodeId,
    to: NodeId,
    k: usize,
    cost: F,
) -> Vec<Path>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    edge_disjoint_shortest_paths_in(g, &mut SearchWorkspace::new(), from, to, k, cost)
}

/// [`edge_disjoint_shortest_paths`] on a reusable [`SearchWorkspace`]
/// (allocation-free inner Dijkstras, bit-identical results).
pub fn edge_disjoint_shortest_paths_in<G, F>(
    g: &G,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    k: usize,
    cost: F,
) -> Vec<Path>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    eds_core(g, ws, from, to, k, cost, |g, ws, s, t, c| {
        crate::dijkstra::shortest_path_in(g, ws, s, t, c)
    })
}

/// The greedy EDS loop, parameterized over the single-pair search so the
/// goal-directed variant (`crate::edge_disjoint_shortest_paths_accel_in`)
/// reuses the exact removal order.
pub(crate) fn eds_core<G, F, S>(
    g: &G,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    k: usize,
    mut cost: F,
    mut search: S,
) -> Vec<Path>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
    S: FnMut(
        &G,
        &mut SearchWorkspace,
        NodeId,
        NodeId,
        &mut dyn FnMut(EdgeRef) -> Option<f64>,
    ) -> Option<(f64, Path)>,
{
    let mut used: HashSet<ChannelId> = HashSet::new();
    let mut paths = Vec::new();
    for _ in 0..k {
        let found = search(g, ws, from, to, &mut |e| {
            if used.contains(&e.id) {
                None
            } else {
                cost(e)
            }
        });
        let Some((_, path)) = found else { break };
        used.extend(path.channels().iter().copied());
        paths.push(path);
    }
    paths
}

/// Up to `k` edge-disjoint widest paths, found greedily (EDW).
///
/// The first path maximizes the bottleneck width; its channels are removed
/// and the process repeats. This is the path type the paper selects for
/// Splicer (widest paths best exploit heavy-tailed channel sizes).
pub fn edge_disjoint_widest_paths<G, F>(
    g: &G,
    from: NodeId,
    to: NodeId,
    k: usize,
    width: F,
) -> Vec<Path>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    edge_disjoint_widest_paths_in(g, &mut SearchWorkspace::new(), from, to, k, width)
}

/// [`edge_disjoint_widest_paths`] on a reusable [`SearchWorkspace`]
/// (allocation-free inner widest-path runs, bit-identical results).
pub fn edge_disjoint_widest_paths_in<G, F>(
    g: &G,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    k: usize,
    mut width: F,
) -> Vec<Path>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    let mut used: HashSet<ChannelId> = HashSet::new();
    let mut paths = Vec::new();
    for _ in 0..k {
        let found = widest_path_in(g, ws, from, to, |e| {
            if used.contains(&e.id) {
                None
            } else {
                width(e)
            }
        });
        let Some((_, path)) = found else { break };
        used.extend(path.channels().iter().copied());
        paths.push(path);
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0→3 via three internally disjoint routes plus one shared bridge.
    fn braided() -> Graph {
        let mut g = Graph::new(8);
        // route A: 0-1-3
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(3));
        // route B: 0-2-3
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(3));
        // route C: 0-4-5-3
        g.add_edge(n(0), n(4));
        g.add_edge(n(4), n(5));
        g.add_edge(n(5), n(3));
        g
    }

    #[test]
    fn finds_all_disjoint_routes() {
        let g = braided();
        let paths = edge_disjoint_shortest_paths(&g, n(0), n(3), 5, |_| Some(1.0));
        assert_eq!(paths.len(), 3);
        // Shortest (2-hop) routes come first.
        assert_eq!(paths[0].hops(), 2);
        assert_eq!(paths[1].hops(), 2);
        assert_eq!(paths[2].hops(), 3);
        assert_disjoint(&paths);
    }

    #[test]
    fn k_limits_count() {
        let g = braided();
        let paths = edge_disjoint_shortest_paths(&g, n(0), n(3), 2, |_| Some(1.0));
        assert_eq!(paths.len(), 2);
        assert!(edge_disjoint_shortest_paths(&g, n(0), n(3), 0, |_| Some(1.0)).is_empty());
    }

    #[test]
    fn widest_first_ordering() {
        let mut g = Graph::new(4);
        let thin_a = g.add_edge(n(0), n(1));
        let thin_b = g.add_edge(n(1), n(3));
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(3));
        let width = move |e: EdgeRef| {
            Some(if e.id == thin_a || e.id == thin_b {
                2.0
            } else {
                9.0
            })
        };
        let paths = edge_disjoint_widest_paths(&g, n(0), n(3), 5, width);
        assert_eq!(paths.len(), 2);
        // Wide route (via node 2) first.
        assert_eq!(paths[0].nodes()[1], n(2));
        assert_eq!(paths[1].nodes()[1], n(1));
        assert_disjoint(&paths);
    }

    #[test]
    fn disjointness_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let nn = rng.random_range(4..12usize);
            let mut g = Graph::new(nn);
            let mut widths = Vec::new();
            for a in 0..nn {
                for b in (a + 1)..nn {
                    if rng.random_bool(0.4) {
                        g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
                        widths.push(rng.random_range(1..50) as f64);
                    }
                }
            }
            let from = n(0);
            let to = NodeId::from_index(nn - 1);
            let eds = edge_disjoint_shortest_paths(&g, from, to, 4, |_| Some(1.0));
            let edw = edge_disjoint_widest_paths(&g, from, to, 4, |e| Some(widths[e.id.index()]));
            assert_disjoint(&eds);
            assert_disjoint(&edw);
            for p in eds.iter().chain(edw.iter()) {
                p.validate(&g).unwrap();
                assert_eq!(p.source(), from);
                assert_eq!(p.target(), to);
            }
        }
    }

    #[test]
    fn no_path_returns_empty() {
        let g = Graph::new(3);
        assert!(edge_disjoint_shortest_paths(&g, n(0), n(2), 3, |_| Some(1.0)).is_empty());
        assert!(edge_disjoint_widest_paths(&g, n(0), n(2), 3, |_| Some(1.0)).is_empty());
    }

    fn assert_disjoint(paths: &[Path]) {
        let mut seen = HashSet::new();
        for p in paths {
            for c in p.channels() {
                assert!(seen.insert(*c), "channel {c} reused across paths");
            }
        }
    }
}
