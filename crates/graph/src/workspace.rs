//! Reusable search buffers for the hot routing path.
//!
//! Every path query (Dijkstra, widest path, Yen's KSP, Dinic's max flow)
//! needs per-node scratch state — distance labels, parent pointers, a
//! priority queue, residual-arc tables. Allocating those on every call is
//! what made repeated path selection the engine's dominant allocation
//! site. A [`SearchWorkspace`] owns all of them; the `*_in` variants of
//! the search entry points ([`Graph::shortest_path_in`],
//! [`Graph::shortest_path_tree_in`], [`crate::widest_path_in`],
//! [`crate::k_shortest_paths_in`], [`crate::max_flow_in`]) borrow the
//! workspace and run allocation-free once its buffers have grown to the
//! graph's size (only the returned [`crate::Path`]s still allocate —
//! they are the query's output).
//!
//! Reuse is **semantics-preserving**: each search fully re-initializes
//! the state it reads, so a warm workspace returns bit-identical results
//! to a cold one. The workspace is deliberately not `Clone`/`Send`-shared:
//! one worker, one workspace.
//!
//! ```
//! use pcn_graph::{Graph, SearchWorkspace};
//! use pcn_types::NodeId;
//!
//! let mut g = Graph::new(3);
//! g.add_edge(NodeId::new(0), NodeId::new(1));
//! g.add_edge(NodeId::new(1), NodeId::new(2));
//! let mut ws = SearchWorkspace::new();
//! for _ in 0..3 {
//!     let (cost, _) = g
//!         .shortest_path_in(&mut ws, NodeId::new(0), NodeId::new(2), |_| Some(1.0))
//!         .unwrap();
//!     assert_eq!(cost, 2.0);
//! }
//! ```

use crate::accel::{AccelScratch, LandmarkTable};
use crate::dijkstra::DijkstraScratch;
use crate::maxflow::MaxFlowScratch;
use crate::widest::WidestScratch;
use crate::Graph;

/// Owned scratch buffers shared by all search algorithms.
///
/// Create one per worker (or per [`crate::Graph`]-consuming engine) and
/// thread it through the `*_in` query variants.
#[derive(Debug, Default)]
pub struct SearchWorkspace {
    pub(crate) dijkstra: DijkstraScratch,
    pub(crate) widest: WidestScratch,
    pub(crate) maxflow: MaxFlowScratch,
    pub(crate) accel: AccelScratch,
    pub(crate) landmarks: LandmarkTable,
}

impl SearchWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> SearchWorkspace {
        SearchWorkspace::default()
    }

    /// Monotone count of nodes settled (non-stale priority-queue pops)
    /// by every Dijkstra-family search run on this workspace — plain,
    /// tree, and goal-directed alike. The per-run difference is the
    /// planner-observability counter `RunStats::nodes_settled`.
    pub fn nodes_settled(&self) -> u64 {
        self.dijkstra.settled + self.accel.settled
    }

    /// Rebuilds the workspace's ALT [`LandmarkTable`] iff its epoch no
    /// longer matches `g` (see [`LandmarkTable::ensure_fresh`]). Cheap
    /// when fresh: two integer compares, no allocation.
    pub fn prepare_landmarks(&mut self, g: &Graph) {
        self.landmarks.ensure_fresh(g);
    }

    /// How many times the workspace's landmark table has been rebuilt.
    pub fn landmark_rebuilds(&self) -> u64 {
        self.landmarks.rebuilds()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{k_shortest_paths_in, max_flow_in, widest_path_in, Graph};
    use pcn_types::NodeId;

    /// A warm workspace must stay bit-identical to a cold one when the
    /// graph it searches **changes size between queries** — nodes and
    /// edges added (buffers grow) or channels closed (the visible edge
    /// set shrinks while buffers stay large). Every `*_in` search
    /// re-initializes its scratch to the current node/edge counts, so a
    /// dynamic world can mutate the topology mid-run without re-creating
    /// per-engine workspaces.
    #[test]
    fn warm_workspace_survives_topology_shrink_and_grow() {
        let n = NodeId::new;
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        let mut warm = SearchWorkspace::new();

        let compare_all = |g: &Graph, warm: &mut SearchWorkspace, label: &str| {
            let mut cold = SearchWorkspace::new();
            let from = n(0);
            let to = NodeId::from_index(g.node_count() - 1);
            let cost = |_| Some(1.0);
            assert_eq!(
                g.shortest_path_in(warm, from, to, cost),
                g.shortest_path_in(&mut cold, from, to, cost),
                "shortest_path_in diverged: {label}"
            );
            assert_eq!(
                crate::shortest_path_bidir_in(g, warm, from, to, cost),
                g.shortest_path_in(&mut cold, from, to, cost),
                "shortest_path_bidir_in diverged: {label}"
            );
            warm.prepare_landmarks(g);
            for bounds in [crate::AccelBounds::Full, crate::AccelBounds::TopologyOnly] {
                assert_eq!(
                    crate::shortest_path_accel_in(g, warm, from, to, cost, bounds),
                    g.shortest_path_in(&mut cold, from, to, cost),
                    "shortest_path_accel_in diverged: {label} {bounds:?}"
                );
            }
            let width = |e: crate::EdgeRef| Some(1.0 + e.id.index() as f64);
            let warm_w = widest_path_in(g, warm, from, to, width);
            let cold_w = widest_path_in(g, &mut cold, from, to, width);
            assert_eq!(warm_w, cold_w, "widest_path_in diverged: {label}");
            assert_eq!(
                k_shortest_paths_in(g, warm, from, to, 3, cost),
                k_shortest_paths_in(g, &mut cold, from, to, 3, cost),
                "k_shortest_paths_in diverged: {label}"
            );
            let cap = |_| Some(5u64);
            let warm_f = max_flow_in(g, warm, from, to, cap);
            let cold_f = max_flow_in(g, &mut cold, from, to, cap);
            assert_eq!(warm_f.value, cold_f.value, "max_flow_in diverged: {label}");
        };

        compare_all(&g, &mut warm, "initial 4-node line");
        // Grow: new node + two new edges; warm buffers must resize up.
        let v = g.add_node();
        g.add_edge(n(3), v);
        g.add_edge(n(0), v);
        compare_all(&g, &mut warm, "after add_node/add_edge growth");
        // Shrink the *visible* edge set: close two channels. Buffers
        // sized to the old edge count must not leak stale residual arcs
        // or distance labels into the smaller world.
        g.close_channel(crate::Graph::edges(&g).nth(1).unwrap())
            .unwrap();
        g.close_channel(crate::Graph::edges(&g).nth(4).unwrap())
            .unwrap();
        compare_all(&g, &mut warm, "after closing two channels");
        // Grow again past the original size.
        let w = g.add_node();
        g.add_edge(v, w);
        g.add_edge(n(1), w);
        compare_all(&g, &mut warm, "after regrowth beyond original size");
    }
}
