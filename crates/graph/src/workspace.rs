//! Reusable search buffers for the hot routing path.
//!
//! Every path query (Dijkstra, widest path, Yen's KSP, Dinic's max flow)
//! needs per-node scratch state — distance labels, parent pointers, a
//! priority queue, residual-arc tables. Allocating those on every call is
//! what made repeated path selection the engine's dominant allocation
//! site. A [`SearchWorkspace`] owns all of them; the `*_in` variants of
//! the search entry points ([`Graph::shortest_path_in`],
//! [`Graph::shortest_path_tree_in`], [`crate::widest_path_in`],
//! [`crate::k_shortest_paths_in`], [`crate::max_flow_in`]) borrow the
//! workspace and run allocation-free once its buffers have grown to the
//! graph's size (only the returned [`crate::Path`]s still allocate —
//! they are the query's output).
//!
//! Reuse is **semantics-preserving**: each search fully re-initializes
//! the state it reads, so a warm workspace returns bit-identical results
//! to a cold one. The workspace is deliberately not `Clone`/`Send`-shared:
//! one worker, one workspace.
//!
//! ```
//! use pcn_graph::{Graph, SearchWorkspace};
//! use pcn_types::NodeId;
//!
//! let mut g = Graph::new(3);
//! g.add_edge(NodeId::new(0), NodeId::new(1));
//! g.add_edge(NodeId::new(1), NodeId::new(2));
//! let mut ws = SearchWorkspace::new();
//! for _ in 0..3 {
//!     let (cost, _) = g
//!         .shortest_path_in(&mut ws, NodeId::new(0), NodeId::new(2), |_| Some(1.0))
//!         .unwrap();
//!     assert_eq!(cost, 2.0);
//! }
//! ```

use crate::dijkstra::DijkstraScratch;
use crate::maxflow::MaxFlowScratch;
use crate::widest::WidestScratch;

/// Owned scratch buffers shared by all search algorithms.
///
/// Create one per worker (or per [`crate::Graph`]-consuming engine) and
/// thread it through the `*_in` query variants.
#[derive(Debug, Default)]
pub struct SearchWorkspace {
    pub(crate) dijkstra: DijkstraScratch,
    pub(crate) widest: WidestScratch,
    pub(crate) maxflow: MaxFlowScratch,
}

impl SearchWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> SearchWorkspace {
        SearchWorkspace::default()
    }
}
