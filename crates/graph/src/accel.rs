//! Goal-directed point-to-point search: bidirectional Dijkstra with a
//! canonical tie-break, ALT landmark lower bounds, and batched
//! shortest-path-tree pairs.
//!
//! Every entry point here is **semantics-preserving**: the returned path
//! is bit-identical (same nodes, same channels) to the one the plain
//! unidirectional [`crate::dijkstra::shortest_path_in`] returns, so the
//! routing layer can toggle acceleration per run without changing a
//! single plan. That identity is not an accident of luck but of a
//! canonical tie-break, documented here because every future edit must
//! preserve it:
//!
//! * The plain Dijkstra pops `(dist, node id)` min-first and only
//!   overwrites a parent on a *strict* improvement. Its final parent for
//!   any node `v` on the reconstructed chain is therefore the optimal
//!   predecessor minimizing `(dist, id)`, carrying the first channel in
//!   that predecessor's adjacency order that achieves the minimum.
//! * The goal-directed search runs A* with a *consistent* heuristic and
//!   pops `(dist + h, dist, id)` min-first. Optimal predecessors no
//!   longer relax `v` in `(dist, id)` order, so the canonical parent is
//!   enforced explicitly: on an equal-distance relaxation the parent is
//!   replaced only if the new predecessor has a strictly smaller
//!   `(dist, id)`. A same-predecessor later channel never replaces an
//!   earlier one (not strictly smaller), preserving adjacency order.
//!
//! The heuristic is the max of two consistent lower bounds:
//!
//! * **Backward-ball bound**: a bounded backward Dijkstra from the
//!   target settles a ball `S_b` with exact reverse distances; `h(u)`
//!   is the exact distance for `u ∈ S_b` and the backward heap's final
//!   top key otherwise (every unsettled node's true reverse distance is
//!   at least that key). The backward ball is grown alternately with a
//!   forward probe ball (advance the smaller top; stop once
//!   `top_f + top_b ≥ μ`, the best meeting-path length seen), which
//!   keeps both balls near half the source–target radius — on
//!   small-world topologies two half-radius balls are far smaller than
//!   the one full-radius ball the unidirectional search settles.
//! * **ALT landmark bound**: `max_L |d(L,u) − d(L,t)|` over the
//!   [`LandmarkTable`]'s hop-metric rows. Admissible and consistent
//!   **only when every usable edge costs ≥ 1**, which holds for the
//!   unit-cost searches routing runs (KSP/EDS price edges at 1.0);
//!   enforced by a debug assertion. A `u32::MAX` row entry means the
//!   node cannot reach the landmark's component at all, which upgrades
//!   the bound to "unreachable" and prunes the push entirely.
//!
//! The landmark table follows the path cache's staleness discipline: it
//! is keyed by [`Graph::topology_epoch`] and rebuilt lazily on mismatch
//! ([`LandmarkTable::ensure_fresh`]), so a stale table can never serve a
//! search on a mutated topology. Funds movement never invalidates it —
//! the rows are pure topology.
//!
//! # Pruning bounds and dependency footprints
//!
//! The two lower bounds differ in what they depend on, and that matters
//! to callers that record a channel dependency footprint (the set of
//! channels the cost closure was consulted on, used for scoped cache
//! invalidation):
//!
//! * The **backward-ball bound** is built by pricing edges under the
//!   *current* funds configuration. It prunes nodes the plain search
//!   would settle, so channels the plain search would consult are never
//!   priced — the consulted-channel set is **not** a sufficient
//!   dependency footprint, and a later funds move can change the answer
//!   without touching any consulted channel.
//! * The **ALT bound** is pure topology: the hop rows lower-bound the
//!   remaining hop count in the open graph, and usable edges are a
//!   subset of open edges priced at ≥ 1, so the bound stays valid under
//!   *any* funds re-configuration. With the `(f, dist, id)` pop order,
//!   every node with slack (`dist + h ≤ dist(t)`, `dist < dist(t)`) is
//!   settled before the target, so any funds move that could shorten or
//!   re-tie the answer must touch a consulted channel.
//!
//! [`AccelBounds`] selects between the two regimes; footprint-recording
//! callers must use [`AccelBounds::TopologyOnly`].

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pcn_types::NodeId;

use crate::cost::Cost;
use crate::dijkstra::{reconstruct, relax, reset, usable, DijkstraScratch, ShortestPathTree};
use crate::{bfs_hops, EdgeRef, Graph, Path, SearchWorkspace, Topology};

/// Landmarks per table: enough rows to bound 100k-node small worlds
/// well while keeping the table a few megabytes and the rebuild a
/// handful of BFS sweeps.
const NUM_LANDMARKS: usize = 8;

/// Which lower bounds a goal-directed search may prune with (see the
/// module docs' "Pruning bounds and dependency footprints").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum AccelBounds {
    /// Backward probe ball maxed with the ALT landmark bound. Fastest,
    /// but the ball is priced under the current funds configuration, so
    /// the set of channels the cost closure is consulted on is **not** a
    /// sufficient dependency footprint.
    #[default]
    Full,
    /// ALT landmark bounds only — funds-independent, so the consulted
    /// channel set remains a sufficient dependency footprint under any
    /// later funds movement. Required for footprint-recording callers;
    /// degrades to plain Dijkstra order when no fresh table is available.
    TopologyOnly,
}

/// The ALT ≥1-cost contract, checked at every relaxation site that can
/// price an edge while a fresh landmark table is in play — forward
/// probe, backward probe, and the A* phase alike — so a sub-unit cost
/// cannot slip in through whichever loop happens to price it first.
#[inline]
fn debug_assert_alt_cost(alt: Option<&LandmarkTable>, w: f64) {
    debug_assert!(
        alt.is_none() || w >= 1.0,
        "ALT landmark bounds require unit-or-larger edge costs, got {w}"
    );
}

/// Epoch-keyed ALT landmark table: hop-metric distance rows from a
/// deterministic farthest-point landmark set.
///
/// Owned by a [`SearchWorkspace`]; [`LandmarkTable::ensure_fresh`] is
/// cheap when the table already matches the graph's
/// [`Graph::topology_epoch`] (two integer compares) and rebuilds the
/// rows with level-synchronous BFS sweeps otherwise.
#[derive(Debug, Default)]
pub struct LandmarkTable {
    landmarks: Vec<NodeId>,
    /// Row-major hop distances: row `l` spans `[l·nodes, (l+1)·nodes)`.
    /// `u32::MAX` marks a node unreachable from that landmark.
    rows: Vec<u32>,
    nodes: usize,
    /// `(node_count, topology_epoch)` the rows were built for; `None`
    /// until the first build. Any mismatch means stale.
    built_epoch: Option<(usize, u64)>,
    rebuilds: u64,
}

impl LandmarkTable {
    /// Creates an empty (stale) table.
    pub fn new() -> LandmarkTable {
        LandmarkTable::default()
    }

    /// Whether the rows match `g`'s current size and topology epoch.
    pub fn is_fresh(&self, g: &Graph) -> bool {
        self.built_epoch == Some((g.node_count(), g.topology_epoch()))
    }

    /// The chosen landmark set (empty until the first build).
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Rebuilds performed so far — the feed behind the
    /// `landmark_rebuilds` run counter.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }

    /// Rebuilds the table iff its epoch no longer matches `g`.
    ///
    /// Like the routing layer's path cache, the table tracks **one**
    /// graph's epoch stream: pair each workspace with a single graph.
    /// Two different graph instances can coincide on
    /// `(node_count, topology_epoch)`, and the table cannot tell them
    /// apart.
    ///
    /// Landmark selection is deterministic farthest-point: the first
    /// landmark is the node farthest from node 0 (ties to the smallest
    /// id), each further landmark maximizes the hop distance to the
    /// landmarks already chosen. A fresh table returns after comparing
    /// the stored `(node_count, topology_epoch)` key — no allocation,
    /// no graph traversal.
    pub fn ensure_fresh(&mut self, g: &Graph) {
        if self.is_fresh(g) {
            return;
        }
        let n = g.node_count();
        self.nodes = n;
        self.landmarks.clear();
        self.rows.clear();
        if n > 0 {
            let want = NUM_LANDMARKS.min(n);
            let seed_hops = bfs_hops(g, NodeId::from_index(0));
            let first = farthest_finite(&seed_hops).unwrap_or(NodeId::from_index(0));
            let row = bfs_hops(g, first);
            let mut min_hops = row.clone();
            self.landmarks.push(first);
            self.rows.extend_from_slice(&row);
            while self.landmarks.len() < want {
                // The next landmark maximizes distance-to-set; a best
                // value of 0 means every reachable node already is a
                // landmark, so stop early.
                let Some(next) = farthest_finite(&min_hops).filter(|c| min_hops[c.index()] > 0)
                else {
                    break;
                };
                let row = bfs_hops(g, next);
                for (m, &h) in min_hops.iter_mut().zip(&row) {
                    *m = (*m).min(h);
                }
                self.landmarks.push(next);
                self.rows.extend_from_slice(&row);
            }
        }
        self.built_epoch = Some((n, g.topology_epoch()));
        self.rebuilds += 1;
    }
}

/// The reachable node with the largest hop value, ties to the smallest
/// id; `None` when nothing is reachable.
fn farthest_finite(hops: &[u32]) -> Option<NodeId> {
    let mut best: Option<(u32, usize)> = None;
    for (i, &h) in hops.iter().enumerate() {
        if h != u32::MAX && best.is_none_or(|(bh, _)| h > bh) {
            best = Some((h, i));
        }
    }
    best.map(|(_, i)| NodeId::from_index(i))
}

/// Reusable goal-directed search state: the bidirectional probe balls,
/// the A* heap (keyed `(f, dist, id)`), the ALT target columns, and a
/// second recycled tree for [`shortest_path_two_trees_in`].
#[derive(Debug, Default)]
pub(crate) struct AccelScratch {
    dist_f: Vec<f64>,
    dist_b: Vec<f64>,
    settled_b: Vec<bool>,
    heap_f: BinaryHeap<Reverse<(Cost, NodeId)>>,
    heap_b: BinaryHeap<Reverse<(Cost, NodeId)>>,
    heap2: BinaryHeap<Reverse<(Cost, Cost, NodeId)>>,
    /// Per-search compaction of the landmark rows against the target:
    /// `(row index, hops(landmark, target))` for landmarks that reach
    /// the target at all.
    tcol: Vec<(u32, u32)>,
    pub(crate) tree_b: ShortestPathTree,
    /// Monotone settled-node count across every goal-directed search on
    /// this scratch (both probe balls plus the A* phase).
    pub(crate) settled: u64,
}

/// Combined consistent lower bound on the remaining distance to the
/// target: backward-ball bound (when a probe ran, i.e.
/// [`AccelBounds::Full`]) maxed with the ALT landmark bound.
/// `f64::INFINITY` means "provably cannot reach the target" and the
/// caller skips the push.
fn lower_bound(
    ball: Option<(&[f64], &[bool], f64)>,
    alt: Option<&LandmarkTable>,
    tcol: &[(u32, u32)],
    v: usize,
) -> f64 {
    let mut h = match ball {
        Some((dist_b, settled_b, top_b)) => {
            if settled_b[v] {
                dist_b[v]
            } else {
                top_b
            }
        }
        None => 0.0,
    };
    if let Some(table) = alt {
        for &(l, dt) in tcol {
            let du = table.rows[l as usize * table.nodes + v];
            if du == u32::MAX {
                // The target's landmark cannot reach `v`: different
                // components, so `v` cannot reach the target either.
                return f64::INFINITY;
            }
            let bound = (i64::from(du) - i64::from(dt)).unsigned_abs() as f64;
            if bound > h {
                h = bound;
            }
        }
    }
    h
}

/// [`crate::shortest_path_in`], goal-directed: bidirectional probe
/// phase, then a canonical A* over the combined lower bound. Returns the
/// bit-identical `(cost, path)` of the unidirectional search.
///
/// Generic over [`Topology`]; never consults a landmark table. Use
/// [`shortest_path_accel_in`] on a [`Graph`] to add ALT bounds.
pub fn shortest_path_bidir_in<G, F>(
    g: &G,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    cost: F,
) -> Option<(f64, Path)>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    let SearchWorkspace {
        dijkstra, accel, ..
    } = ws;
    accel_scratch(g, dijkstra, accel, None, AccelBounds::Full, from, to, cost)
}

/// [`shortest_path_bidir_in`] plus ALT landmark lower bounds when the
/// workspace's [`LandmarkTable`] is fresh for `g` (stale or absent rows
/// silently degrade to the pure bidirectional search — never to a wrong
/// answer). `bounds` selects the pruning regime: [`AccelBounds::Full`]
/// adds the backward probe ball, [`AccelBounds::TopologyOnly`] skips it
/// so footprint-recording callers consult a sufficient channel set.
///
/// # Contract
///
/// With a fresh table, every usable edge must cost **at least 1** (the
/// landmark rows are hop-metric lower bounds); the unit-cost closures of
/// the routing layer satisfy this, and a debug assertion enforces it at
/// every relaxation site.
pub fn shortest_path_accel_in<F>(
    g: &Graph,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    cost: F,
    bounds: AccelBounds,
) -> Option<(f64, Path)>
where
    F: FnMut(EdgeRef) -> Option<f64>,
{
    let SearchWorkspace {
        dijkstra,
        accel,
        landmarks,
        ..
    } = ws;
    let alt = landmarks.is_fresh(g).then_some(&*landmarks);
    accel_scratch(g, dijkstra, accel, alt, bounds, from, to, cost)
}

#[allow(clippy::too_many_arguments)]
fn accel_scratch<G, F>(
    g: &G,
    dij: &mut DijkstraScratch,
    acc: &mut AccelScratch,
    alt: Option<&LandmarkTable>,
    bounds: AccelBounds,
    from: NodeId,
    to: NodeId,
    mut cost: F,
) -> Option<(f64, Path)>
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    let n = g.node_count();
    if from.index() >= n || to.index() >= n {
        return None;
    }
    if from == to {
        return Some((0.0, Path::trivial(from)));
    }
    let AccelScratch {
        dist_f,
        dist_b,
        settled_b,
        heap_f,
        heap_b,
        heap2,
        tcol,
        settled,
        tree_b: _,
    } = acc;
    tcol.clear();
    if let Some(table) = alt {
        for l in 0..table.landmarks.len() {
            let dt = table.rows[l * table.nodes + to.index()];
            if dt != u32::MAX {
                tcol.push((l as u32, dt));
            }
        }
    }

    // Phase 1 (AccelBounds::Full only): alternating bidirectional probe.
    // Grows a forward ball from `from` and a backward ball from `to`
    // (advance the smaller top; forward on ties), tracking μ = the best
    // meeting-path length seen. No parents are kept — the phase only
    // exists to size the backward ball that phase 2 mines for lower
    // bounds. TopologyOnly skips it entirely: the ball bound prices
    // edges under the current funds configuration, which would let
    // phase 2 prune nodes whose channels a footprint must record.
    let ball = if bounds == AccelBounds::Full {
        dist_f.clear();
        dist_f.resize(n, f64::INFINITY);
        dist_b.clear();
        dist_b.resize(n, f64::INFINITY);
        settled_b.clear();
        settled_b.resize(n, false);
        heap_f.clear();
        heap_b.clear();
        dist_f[from.index()] = 0.0;
        heap_f.push(Reverse((Cost(0.0), from)));
        dist_b[to.index()] = 0.0;
        heap_b.push(Reverse((Cost(0.0), to)));
        let mut mu = f64::INFINITY;
        loop {
            let top_f = heap_f.peek().map_or(f64::INFINITY, |Reverse((c, _))| c.0);
            let top_b = heap_b.peek().map_or(f64::INFINITY, |Reverse((c, _))| c.0);
            if top_f + top_b >= mu {
                // Covers exhaustion too: both tops infinite ⇒ the sum is
                // infinite ⇒ stop (μ still infinite means unreachable).
                break;
            }
            if top_f <= top_b {
                let Some(Reverse((Cost(d), u))) = heap_f.pop() else {
                    break;
                };
                if d > dist_f[u.index()] {
                    continue; // stale entry
                }
                *settled += 1;
                if dist_b[u.index()].is_finite() {
                    // Any backward label is the length of a real u→to path,
                    // so μ stays an achievable upper bound.
                    mu = mu.min(d + dist_b[u.index()]);
                }
                for e in g.out_edges(u) {
                    let Some(w) = usable(cost(e)) else { continue };
                    debug_assert_alt_cost(alt, w);
                    let nd = d + w;
                    if nd < dist_f[e.to.index()] {
                        dist_f[e.to.index()] = nd;
                        heap_f.push(Reverse((Cost(nd), e.to)));
                    }
                }
            } else {
                let Some(Reverse((Cost(d), u))) = heap_b.pop() else {
                    break;
                };
                if d > dist_b[u.index()] {
                    continue; // stale entry
                }
                *settled += 1;
                settled_b[u.index()] = true;
                if dist_f[u.index()].is_finite() {
                    mu = mu.min(d + dist_f[u.index()]);
                }
                for e in g.out_edges(u) {
                    // Traversing the channel backwards prices the forward
                    // arc e.to → u, exactly what a path through u pays.
                    let flipped = EdgeRef {
                        id: e.id,
                        from: e.to,
                        to: e.from,
                    };
                    let Some(w) = usable(cost(flipped)) else {
                        continue;
                    };
                    debug_assert_alt_cost(alt, w);
                    let nd = d + w;
                    if nd < dist_b[e.to.index()] {
                        dist_b[e.to.index()] = nd;
                        heap_b.push(Reverse((Cost(nd), e.to)));
                    }
                }
            }
        }
        if !mu.is_finite() {
            return None;
        }
        // Every unsettled node's true backward distance is at least the
        // final top key (exhausted heap ⇒ the settled set is complete and
        // the bound is rightly infinite).
        let top_b_final = heap_b.peek().map_or(f64::INFINITY, |Reverse((c, _))| c.0);
        Some((&**dist_b, &**settled_b, top_b_final))
    } else {
        None
    };

    // Phase 2: canonical A* from `from`, authoritative for the answer.
    reset(&mut dij.dist, &mut dij.parent, &mut dij.heap, n);
    heap2.clear();
    dij.dist[from.index()] = 0.0;
    let h0 = lower_bound(ball, alt, tcol, from.index());
    if h0.is_finite() {
        heap2.push(Reverse((Cost(h0), Cost(0.0), from)));
    }
    while let Some(Reverse((Cost(_), Cost(d), u))) = heap2.pop() {
        if d > dij.dist[u.index()] {
            continue; // stale entry
        }
        *settled += 1;
        if u == to {
            break;
        }
        for e in g.out_edges(u) {
            let Some(w) = usable(cost(e)) else { continue };
            debug_assert_alt_cost(alt, w);
            let nd = d + w;
            let vi = e.to.index();
            if nd < dij.dist[vi] {
                dij.dist[vi] = nd;
                dij.parent[vi] = Some((u, e.id));
                let hv = lower_bound(ball, alt, tcol, vi);
                if hv.is_finite() {
                    heap2.push(Reverse((Cost(nd + hv), Cost(nd), e.to)));
                }
            } else if nd == dij.dist[vi] {
                // Canonical tie-break: keep the parent with the smaller
                // `(dist, id)`. Both candidates are settled, so their
                // labels are final and the comparison is well-defined.
                // A same-parent later channel is not strictly smaller
                // and never replaces the adjacency-order winner.
                if let Some((p, _)) = dij.parent[vi] {
                    let pd = dij.dist[p.index()];
                    if d < pd || (d == pd && u < p) {
                        dij.parent[vi] = Some((u, e.id));
                    }
                }
            }
        }
    }
    if !dij.dist[to.index()].is_finite() {
        return None;
    }
    let path = reconstruct(from, to, &dij.parent).expect("finite distance implies a parent chain");
    Some((dij.dist[to.index()], path))
}

/// Two full shortest-path trees in one call — from `a` and from `b`,
/// both priced by the same (direction-aware) `cost` closure — without
/// the second tree evicting the first from the workspace.
///
/// This is the batched form of the Landmark scheme's per-plan legs: one
/// tree from the payment source and one from the destination replace
/// `2·k` single-pair searches, and `tree.path_to(landmark)` reads each
/// leg off in O(path length). The returned references borrow the
/// workspace and are overwritten by the next tree query on it.
pub fn shortest_path_two_trees_in<'a, G, F>(
    g: &G,
    ws: &'a mut SearchWorkspace,
    a: NodeId,
    b: NodeId,
    mut cost: F,
) -> (&'a ShortestPathTree, &'a ShortestPathTree)
where
    G: Topology,
    F: FnMut(EdgeRef) -> Option<f64>,
{
    let n = g.node_count();
    let SearchWorkspace {
        dijkstra: dij,
        accel: acc,
        ..
    } = ws;
    reset(&mut dij.tree.dist, &mut dij.tree.parent, &mut dij.heap, n);
    dij.tree.source = a;
    relax(
        g,
        a,
        None,
        &mut cost,
        &mut dij.tree.dist,
        &mut dij.tree.parent,
        &mut dij.heap,
        &mut dij.settled,
    );
    reset(
        &mut acc.tree_b.dist,
        &mut acc.tree_b.parent,
        &mut acc.heap_f,
        n,
    );
    acc.tree_b.source = b;
    relax(
        g,
        b,
        None,
        &mut cost,
        &mut acc.tree_b.dist,
        &mut acc.tree_b.parent,
        &mut acc.heap_f,
        &mut acc.settled,
    );
    (&dij.tree, &acc.tree_b)
}

/// [`crate::k_shortest_paths_in`] with every inner single-pair search
/// goal-directed ([`shortest_path_accel_in`] under `bounds`), plus the
/// early-stop hook of [`crate::k_shortest_paths_until_in`]. Results are
/// bit-identical to the plain form for any `until` and either bound
/// regime.
#[allow(clippy::too_many_arguments)]
pub fn k_shortest_paths_accel_in<F, U>(
    g: &Graph,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    k: usize,
    cost: F,
    until: U,
    bounds: AccelBounds,
) -> Vec<Path>
where
    F: FnMut(EdgeRef) -> Option<f64>,
    U: FnMut(&Path) -> bool,
{
    crate::yen::yen_core(
        g,
        ws,
        from,
        to,
        k,
        cost,
        |g, ws, s, t, c| shortest_path_accel_in(g, ws, s, t, c, bounds),
        until,
    )
}

/// [`crate::edge_disjoint_shortest_paths_in`] with every greedy round's
/// search goal-directed under `bounds`; bit-identical results either way.
pub fn edge_disjoint_shortest_paths_accel_in<F>(
    g: &Graph,
    ws: &mut SearchWorkspace,
    from: NodeId,
    to: NodeId,
    k: usize,
    cost: F,
    bounds: AccelBounds,
) -> Vec<Path>
where
    F: FnMut(EdgeRef) -> Option<f64>,
{
    crate::disjoint::eds_core(g, ws, from, to, k, cost, |g, ws, s, t, c| {
        shortest_path_accel_in(g, ws, s, t, c, bounds)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn random_graph(rng: &mut StdRng, nn: usize, p: f64) -> (Graph, Vec<f64>) {
        let mut g = Graph::new(nn);
        let mut w = Vec::new();
        for a in 0..nn {
            for b in (a + 1)..nn {
                if rng.random_bool(p) {
                    g.add_edge(NodeId::from_index(a), NodeId::from_index(b));
                    w.push(rng.random_range(1..9) as f64);
                }
            }
        }
        (g, w)
    }

    fn assert_same(a: &Option<(f64, Path)>, b: &Option<(f64, Path)>, label: &str) {
        match (a, b) {
            (None, None) => {}
            (Some((ca, pa)), Some((cb, pb))) => {
                assert_eq!(ca, cb, "{label}: cost");
                assert_eq!(pa.nodes(), pb.nodes(), "{label}: nodes");
                assert_eq!(pa.channels(), pb.channels(), "{label}: channels");
            }
            other => panic!("{label}: reachability mismatch {other:?}"),
        }
    }

    #[test]
    fn bidir_matches_unidirectional_on_random_weighted_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ws = SearchWorkspace::new();
        for round in 0..60 {
            let nn = rng.random_range(2..14);
            let (g, w) = random_graph(&mut rng, nn, 0.4);
            let from = n(0);
            let to = NodeId::from_index(g.node_count() - 1);
            let plain = g.shortest_path_in(&mut ws, from, to, |e| Some(w[e.id.index()]));
            let bidir = shortest_path_bidir_in(&g, &mut ws, from, to, |e| Some(w[e.id.index()]));
            assert_same(&plain, &bidir, &format!("round {round}"));
        }
    }

    #[test]
    fn bidir_handles_directional_and_unusable_costs() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let mut ws = SearchWorkspace::new();
        // Direction-dependent costs: usable only in the forward direction.
        let fwd_only = |e: EdgeRef| (e.from < e.to).then_some(1.0);
        let plain = g.shortest_path_in(&mut ws, n(0), n(2), fwd_only);
        let bidir = shortest_path_bidir_in(&g, &mut ws, n(0), n(2), fwd_only);
        assert_same(&plain, &bidir, "forward-only");
        assert!(plain.is_some());
        let rev_plain = g.shortest_path_in(&mut ws, n(2), n(0), fwd_only);
        let rev_bidir = shortest_path_bidir_in(&g, &mut ws, n(2), n(0), fwd_only);
        assert_same(&rev_plain, &rev_bidir, "reverse unusable");
        assert!(rev_plain.is_none());
    }

    #[test]
    fn bidir_edge_cases() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        let mut ws = SearchWorkspace::new();
        // Self path.
        let (c, p) = shortest_path_bidir_in(&g, &mut ws, n(0), n(0), |_| Some(1.0)).unwrap();
        assert_eq!((c, p.hops()), (0.0, 0));
        // Unreachable and out of range.
        assert!(shortest_path_bidir_in(&g, &mut ws, n(0), n(3), |_| Some(1.0)).is_none());
        assert!(shortest_path_bidir_in(&g, &mut ws, n(0), n(9), |_| Some(1.0)).is_none());
        assert!(shortest_path_bidir_in(&g, &mut ws, n(9), n(0), |_| Some(1.0)).is_none());
    }

    #[test]
    fn alt_accelerated_search_matches_plain_under_bans() {
        let mut rng = StdRng::seed_from_u64(23);
        for round in 0..40 {
            // One workspace per graph: the landmark table tracks a
            // single graph's epoch stream.
            let mut ws = SearchWorkspace::new();
            let nn = rng.random_range(2..16);
            let (g, _) = random_graph(&mut rng, nn, 0.35);
            ws.prepare_landmarks(&g);
            assert!(ws.landmarks.is_fresh(&g));
            let from = n(0);
            let to = NodeId::from_index(g.node_count() - 1);
            // Unit costs with a pseudo-random banned channel set — the
            // shape of Yen spur searches.
            let banned: Vec<bool> = (0..64).map(|i| (i * 7 + round) % 5 == 0).collect();
            let cost =
                |e: EdgeRef| (!banned.get(e.id.index()).copied().unwrap_or(false)).then_some(1.0);
            let plain = g.shortest_path_in(&mut ws, from, to, cost);
            for bounds in [AccelBounds::Full, AccelBounds::TopologyOnly] {
                let accel = shortest_path_accel_in(&g, &mut ws, from, to, cost, bounds);
                assert_same(&plain, &accel, &format!("round {round} {bounds:?}"));
            }
        }
    }

    #[test]
    fn accel_search_survives_churn_and_epoch_rebuilds() {
        let mut rng = StdRng::seed_from_u64(37);
        let mut ws = SearchWorkspace::new();
        let (mut g, _) = random_graph(&mut rng, 12, 0.5);
        for round in 0..30 {
            // Mutate: close a random open channel or add an edge.
            let open: Vec<_> = g.open_edges().collect();
            if !open.is_empty() && rng.random_bool(0.6) {
                let victim = open[rng.random_range(0..open.len())];
                g.close_channel(victim).unwrap();
            } else {
                let a = rng.random_range(0..12u32);
                let b = (a + 1 + rng.random_range(0..11u32)) % 12;
                g.add_edge(n(a), n(b));
            }
            ws.prepare_landmarks(&g);
            let from = n(rng.random_range(0..12u32));
            let to = n(rng.random_range(0..12u32));
            let plain = g.shortest_path_in(&mut ws, from, to, |_| Some(1.0));
            let accel =
                shortest_path_accel_in(&g, &mut ws, from, to, |_| Some(1.0), AccelBounds::Full);
            assert_same(&plain, &accel, &format!("churn round {round}"));
        }
        // Rebuild count tracked epoch changes, not query count.
        assert_eq!(ws.landmark_rebuilds(), 30);
        ws.prepare_landmarks(&g);
        assert_eq!(ws.landmark_rebuilds(), 30, "fresh table must not rebuild");
    }

    #[test]
    fn landmark_selection_is_deterministic_and_epoch_keyed() {
        let mut rng = StdRng::seed_from_u64(5);
        let (mut g, _) = random_graph(&mut rng, 20, 0.3);
        let mut t1 = LandmarkTable::new();
        let mut t2 = LandmarkTable::new();
        t1.ensure_fresh(&g);
        t2.ensure_fresh(&g);
        assert_eq!(t1.landmarks(), t2.landmarks());
        assert!(!t1.landmarks().is_empty());
        assert_eq!(t1.rebuilds(), 1);
        t1.ensure_fresh(&g);
        assert_eq!(t1.rebuilds(), 1, "fresh table must be a no-op");
        let epoch = g.topology_epoch();
        g.add_edge(n(0), n(1));
        assert_ne!(g.topology_epoch(), epoch);
        assert!(!t1.is_fresh(&g));
        t1.ensure_fresh(&g);
        assert_eq!(t1.rebuilds(), 2);
        assert!(t1.is_fresh(&g));
    }

    #[test]
    fn two_trees_match_individual_searches() {
        let mut rng = StdRng::seed_from_u64(7);
        let (g, w) = random_graph(&mut rng, 14, 0.4);
        let mut ws = SearchWorkspace::new();
        let cost = |e: EdgeRef| Some(w[e.id.index()]);
        let (ta, tb) = shortest_path_two_trees_in(&g, &mut ws, n(0), n(13), cost);
        let (ta, tb) = (ta.clone(), tb.clone());
        let mut ws2 = SearchWorkspace::new();
        for v in g.nodes() {
            let from_a = g.shortest_path_in(&mut ws2, n(0), v, cost);
            assert_eq!(ta.distance(v), from_a.as_ref().map(|(c, _)| *c), "{v}");
            assert_eq!(
                ta.path_to(v)
                    .map(|p| (p.nodes().to_vec(), p.channels().to_vec())),
                from_a.map(|(_, p)| (p.nodes().to_vec(), p.channels().to_vec())),
                "tree from a diverges at {v}"
            );
            let from_b = g.shortest_path_in(&mut ws2, n(13), v, cost);
            assert_eq!(
                tb.path_to(v)
                    .map(|p| (p.nodes().to_vec(), p.channels().to_vec())),
                from_b.map(|(_, p)| (p.nodes().to_vec(), p.channels().to_vec())),
                "tree from b diverges at {v}"
            );
        }
    }

    #[test]
    fn accel_ksp_and_eds_match_plain_variants() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..25 {
            let mut ws = SearchWorkspace::new();
            let nn = rng.random_range(4..14);
            let (g, _) = random_graph(&mut rng, nn, 0.45);
            ws.prepare_landmarks(&g);
            let from = n(0);
            let to = NodeId::from_index(g.node_count() - 1);
            let plain_ksp = crate::k_shortest_paths_in(&g, &mut ws, from, to, 4, |_| Some(1.0));
            let plain_eds =
                crate::edge_disjoint_shortest_paths_in(&g, &mut ws, from, to, 4, |_| Some(1.0));
            for bounds in [AccelBounds::Full, AccelBounds::TopologyOnly] {
                let accel_ksp = k_shortest_paths_accel_in(
                    &g,
                    &mut ws,
                    from,
                    to,
                    4,
                    |_| Some(1.0),
                    |_| false,
                    bounds,
                );
                assert_eq!(plain_ksp, accel_ksp, "{bounds:?}");
                let accel_eds = edge_disjoint_shortest_paths_accel_in(
                    &g,
                    &mut ws,
                    from,
                    to,
                    4,
                    |_| Some(1.0),
                    bounds,
                );
                assert_eq!(plain_eds, accel_eds, "{bounds:?}");
            }
        }
    }

    /// The ≥1-cost ALT contract is checked in **every** loop that can
    /// price an edge, not just the phase-1 forward relaxation: here the
    /// backward probe is the first to price the sub-unit arc into the
    /// target (the forward ball never reaches it first).
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unit-or-larger")]
    fn sub_unit_cost_trips_assert_in_backward_probe() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let mut ws = SearchWorkspace::new();
        ws.prepare_landmarks(&g);
        // The arc 1→2 (priced flipped by the backward probe from 2
        // before the forward ball gets there) costs 0.5.
        let cost = |e: EdgeRef| {
            Some(if e.from == n(1) && e.to == n(2) {
                0.5
            } else {
                1.0
            })
        };
        let _ = shortest_path_accel_in(&g, &mut ws, n(0), n(2), cost, AccelBounds::Full);
    }

    /// TopologyOnly runs no probe at all, so the phase-2 A* loop must
    /// carry the same ≥1-cost check.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unit-or-larger")]
    fn sub_unit_cost_trips_assert_in_astar_phase() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let mut ws = SearchWorkspace::new();
        ws.prepare_landmarks(&g);
        let cost = |e: EdgeRef| {
            Some(if e.from == n(1) && e.to == n(2) {
                0.5
            } else {
                1.0
            })
        };
        let _ = shortest_path_accel_in(&g, &mut ws, n(0), n(2), cost, AccelBounds::TopologyOnly);
    }

    #[test]
    fn settled_counter_reports_goal_directed_savings() {
        // On an expander-like small world the unidirectional search
        // settles close to the whole ball of radius d(s,t); the two
        // half-radius balls plus the bounded A* corridor are far
        // smaller. Aggregate over pairs to keep the assertion robust.
        let mut rng = StdRng::seed_from_u64(99);
        let g = crate::watts_strogatz(800, 8, 0.3, &mut rng);
        let mut ws = SearchWorkspace::new();
        ws.prepare_landmarks(&g);
        let mut plain_settled = 0;
        let mut accel_settled = 0;
        for round in 0..30u32 {
            let from = NodeId::new((round * 97) % 800);
            let to = NodeId::new((round * 211 + 400) % 800);
            let before = ws.nodes_settled();
            let plain = g.shortest_path_in(&mut ws, from, to, |_| Some(1.0));
            let mid = ws.nodes_settled();
            let accel =
                shortest_path_accel_in(&g, &mut ws, from, to, |_| Some(1.0), AccelBounds::Full);
            assert_same(&plain, &accel, &format!("pair {round}"));
            plain_settled += mid - before;
            accel_settled += ws.nodes_settled() - mid;
        }
        assert!(
            accel_settled * 2 < plain_settled,
            "goal-directed settled {accel_settled} vs plain {plain_settled}"
        );
    }
}
