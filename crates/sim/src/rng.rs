//! Seeded RNG with labelled sub-streams.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation RNG: every random decision in an experiment flows from
/// one root seed through this wrapper, and independent subsystems get
/// independent labelled forks so adding a draw in one subsystem never
/// perturbs another.
///
/// # Examples
///
/// ```
/// use pcn_sim::SimRng;
///
/// let mut root = SimRng::seed(42);
/// let mut topo = root.fork("topology");
/// let mut load = root.fork("workload");
/// // Forks are independent and reproducible:
/// assert_eq!(SimRng::seed(42).fork("topology").next_u64(), topo.next_u64());
/// assert_ne!(topo.next_u64(), load.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a root RNG from a seed.
    pub fn seed(seed: u64) -> SimRng {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed_value(&self) -> u64 {
        self.seed
    }

    /// Derives an independent labelled sub-stream. Forking does not
    /// consume randomness from `self`.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        SimRng::seed(self.seed ^ h.rotate_left(17))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        self.inner.random_range(lo..hi)
    }

    /// Uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.inner.random_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random_bool(p)
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }

    /// Mutable access to the underlying `rand` RNG (for the graph
    /// generators, which take `impl rand::Rng`).
    pub fn as_rand(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::seed(1);
        let mut b = SimRng::seed(1);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_stable_and_independent() {
        let root = SimRng::seed(10);
        let mut f1 = root.fork("x");
        let mut f1b = root.fork("x");
        let mut f2 = root.fork("y");
        assert_eq!(f1.next_u64(), f1b.next_u64());
        assert_ne!(f1.next_u64(), f2.next_u64());
    }

    #[test]
    fn fork_does_not_consume() {
        let mut a = SimRng::seed(3);
        let _ = a.fork("ignored");
        let mut b = SimRng::seed(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_bounds() {
        let mut r = SimRng::seed(5);
        for _ in 0..1000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..100 {
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed(6);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::seed(7);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>()); // astronomically unlikely
    }

    #[test]
    fn pick_handles_empty() {
        let mut r = SimRng::seed(9);
        let empty: [u8; 0] = [];
        assert_eq!(r.pick(&empty), None);
        assert_eq!(r.pick(&[42]), Some(&42));
    }
}
