//! Sampling distributions, implemented from first principles.
//!
//! The evaluation needs: exponential inter-arrival times (Poisson
//! transaction processes), a log-normal fitted to the Lightning channel
//! size statistics, a heavy-tailed transaction value distribution shaped
//! like the credit-card dataset, and Zipf-skewed endpoint choice. Rather
//! than pulling `rand_distr`, the samplers live here (see the dependency
//! policy in DESIGN.md) with moment tests backing them.

use crate::SimRng;

/// Exponential distribution with the given rate λ (mean 1/λ).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with rate `rate`.
    ///
    /// # Panics
    ///
    /// Panics unless `rate > 0` and finite.
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "rate must be positive");
        Exponential { rate }
    }

    /// Creates an exponential with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Exponential { rate: 1.0 / mean }
    }

    /// Draws a sample (inverse-CDF method).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        // 1 - u avoids ln(0).
        -(1.0 - rng.f64()).ln() / self.rate
    }
}

/// Standard-normal sampler (Box–Muller, one value per call).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StandardNormal;

impl StandardNormal {
    /// Draws a standard normal sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        let u1 = (1.0 - rng.f64()).max(f64::MIN_POSITIVE);
        let u2 = rng.f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

/// Log-normal distribution parameterized by the underlying normal's µ, σ.
///
/// Median = e^µ; mean = e^(µ+σ²/2). [`LogNormal::fit_median_mean`] inverts
/// those relations — exactly how the channel-size distribution is fitted to
/// the Lightning dataset statistics (min 10 / median 152 / mean 403).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with underlying normal parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0` and both are finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "mu must be finite");
        assert!(sigma.is_finite() && sigma > 0.0, "sigma must be positive");
        LogNormal { mu, sigma }
    }

    /// Fits µ, σ from a target median and mean (`mean > median > 0`).
    ///
    /// # Panics
    ///
    /// Panics if `median <= 0` or `mean <= median`.
    pub fn fit_median_mean(median: f64, mean: f64) -> Self {
        assert!(median > 0.0, "median must be positive");
        assert!(mean > median, "mean must exceed median for a log-normal");
        let mu = median.ln();
        let sigma = (2.0 * (mean / median).ln()).sqrt();
        LogNormal { mu, sigma }
    }

    /// Theoretical mean e^(µ+σ²/2).
    pub fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    /// Theoretical median e^µ.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        (self.mu + self.sigma * StandardNormal.sample(rng)).exp()
    }
}

/// Pareto (type I) distribution: support `[scale, ∞)`, tail index `alpha`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    scale: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto with minimum `scale` and shape `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless both are positive and finite.
    pub fn new(scale: f64, alpha: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        assert!(alpha.is_finite() && alpha > 0.0, "alpha must be positive");
        Pareto { scale, alpha }
    }

    /// Draws a sample (inverse CDF).
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        self.scale / (1.0 - rng.f64()).powf(1.0 / self.alpha)
    }
}

/// Poisson distribution (Knuth's method below mean 30, normal
/// approximation above).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Poisson {
    mean: f64,
}

impl Poisson {
    /// Creates a Poisson with the given mean.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and finite.
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Poisson { mean }
    }

    /// Draws a sample.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        if self.mean < 30.0 {
            let l = (-self.mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= rng.f64();
                if p <= l {
                    return k;
                }
                k += 1;
            }
        } else {
            let s = StandardNormal.sample(rng);
            (self.mean + self.mean.sqrt() * s).round().max(0.0) as u64
        }
    }
}

/// Zipf distribution over ranks `1..=n` with exponent `s`.
///
/// Used for skewed endpoint popularity: a few "merchant" clients receive a
/// disproportionate share of payments.
#[derive(Clone, Debug, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf over `n ≥ 1` ranks with exponent `s ≥ 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in cdf.iter_mut() {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `[0, n)` (0 = most popular).
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Discrete distribution over arbitrary weights.
#[derive(Clone, Debug, PartialEq)]
pub struct WeightedIndex {
    cdf: Vec<f64>,
}

impl WeightedIndex {
    /// Creates a weighted sampler; weights must be non-negative with a
    /// positive sum.
    ///
    /// # Panics
    ///
    /// Panics on empty/negative/zero-sum weights.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "need at least one weight");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        for v in cdf.iter_mut() {
            *v /= acc;
        }
        WeightedIndex { cdf }
    }

    /// Draws an index proportionally to its weight.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(samples: &[f64]) -> f64 {
        samples.iter().sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let mut rng = SimRng::seed(1);
        let d = Exponential::with_mean(4.0);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let m = mean_of(&xs);
        assert!((m - 4.0).abs() < 0.1, "mean {m}");
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::seed(2);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| StandardNormal.sample(&mut rng))
            .collect();
        let m = mean_of(&xs);
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!(m.abs() < 0.03, "mean {m}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_fit_matches_lightning_stats() {
        // Channel sizes: median 152, mean 403 (paper §V-A).
        let d = LogNormal::fit_median_mean(152.0, 403.0);
        assert!((d.median() - 152.0).abs() < 1e-9);
        assert!((d.mean() - 403.0).abs() < 1e-9);
        let mut rng = SimRng::seed(3);
        let xs: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let sample_median = {
            let mut s = xs.clone();
            s.sort_by(f64::total_cmp);
            s[s.len() / 2]
        };
        assert!(
            (sample_median - 152.0).abs() / 152.0 < 0.05,
            "{sample_median}"
        );
        let sample_mean = mean_of(&xs);
        assert!((sample_mean - 403.0).abs() / 403.0 < 0.1, "{sample_mean}");
    }

    #[test]
    fn pareto_minimum_respected() {
        let mut rng = SimRng::seed(4);
        let d = Pareto::new(10.0, 2.5);
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| x >= 10.0));
        // mean = scale * alpha / (alpha - 1) = 10 * 2.5/1.5 ≈ 16.67
        let m = mean_of(&xs);
        assert!((m - 16.67).abs() < 1.0, "mean {m}");
    }

    #[test]
    fn poisson_small_and_large_mean() {
        let mut rng = SimRng::seed(5);
        for mean in [0.5, 3.0, 20.0, 100.0] {
            let d = Poisson::new(mean);
            let xs: Vec<f64> = (0..30_000).map(|_| d.sample(&mut rng) as f64).collect();
            let m = mean_of(&xs);
            assert!((m - mean).abs() / mean < 0.08, "mean {mean}: sampled {m}");
        }
    }

    #[test]
    fn zipf_rank_ordering() {
        let mut rng = SimRng::seed(6);
        let d = Zipf::new(20, 1.2);
        let mut counts = [0usize; 20];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        // Rank 0 strictly dominates rank 5 dominates rank 19.
        assert!(counts[0] > counts[5]);
        assert!(counts[5] > counts[19]);
        // Ratio of rank0/rank1 ≈ 2^1.2 ≈ 2.3
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((ratio - 2.3).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut rng = SimRng::seed(7);
        let d = Zipf::new(10, 0.0);
        let mut counts = vec![0usize; 10];
        for _ in 0..100_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "count {c}");
        }
    }

    #[test]
    fn weighted_index_proportions() {
        let mut rng = SimRng::seed(8);
        let d = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "mean must exceed median")]
    fn lognormal_bad_fit_panics() {
        LogNormal::fit_median_mean(100.0, 50.0);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn weighted_zero_sum_panics() {
        WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn samplers_deterministic_per_seed() {
        let d = LogNormal::new(1.0, 0.5);
        let a: Vec<f64> = {
            let mut r = SimRng::seed(9);
            (0..5).map(|_| d.sample(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = SimRng::seed(9);
            (0..5).map(|_| d.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
