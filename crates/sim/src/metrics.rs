//! Measurement primitives for experiment runs.

use pcn_types::SimTime;

/// A monotonically increasing counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

/// A streaming histogram over non-negative `f64` values.
///
/// Values are recorded exactly (stored); quantiles sort lazily. The
/// evaluation records at most a few hundred thousand values per run, so
/// exact storage beats bucketing error.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    values: Vec<f64>,
    sorted: bool,
}

impl PartialEq for Histogram {
    /// Histograms compare by recorded values only — the lazy `sorted`
    /// flag is an internal cache, not observable state.
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records a value (NaN is ignored).
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of recorded values.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// Pre-sizes the backing storage for `additional` further records —
    /// lets a hot loop record without reallocating (the engine's
    /// steady-state allocation-freedom test relies on this).
    pub fn reserve(&mut self, additional: usize) {
        self.values.reserve(additional);
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Quantile `q ∈ [0, 1]` (nearest-rank); 0.0 when empty.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.values.sort_by(f64::total_cmp);
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.values.len() - 1) as f64 * q).round() as usize;
        self.values[idx]
    }

    /// Appends every value recorded in `other`, preserving `other`'s
    /// recording order — so merging a histogram into an empty one
    /// reproduces it exactly (value-equality, which is what
    /// [`PartialEq`] compares).
    pub fn merge(&mut self, other: &Histogram) {
        self.values.extend_from_slice(&other.values);
        self.sorted = self.values.is_empty();
    }

    /// Maximum recorded value (0.0 when empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }
}

/// A `(time, value)` series, recorded in nondecreasing time order.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> TimeSeries {
        TimeSeries::default()
    }

    /// Appends a point.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded time.
    pub fn record(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be recorded in order");
        }
        self.points.push((t, v));
    }

    /// All points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of values recorded at or after `from`.
    pub fn mean_since(&self, from: SimTime) -> f64 {
        let (sum, n) = self
            .points
            .iter()
            .filter(|(t, _)| *t >= from)
            .fold((0.0, 0usize), |(s, n), (_, v)| (s + v, n + 1));
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Last value (None when empty).
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_ops() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 3.0);
        assert_eq!(h.sum(), 15.0);
        assert_eq!(h.quantile(0.0), 1.0);
        assert_eq!(h.quantile(0.5), 3.0);
        assert_eq!(h.quantile(1.0), 5.0);
        assert_eq!(h.max(), 5.0);
    }

    #[test]
    fn histogram_empty_and_nan() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_quantile_after_more_records() {
        let mut h = Histogram::new();
        h.record(1.0);
        assert_eq!(h.quantile(1.0), 1.0);
        h.record(10.0);
        assert_eq!(h.quantile(1.0), 10.0); // re-sorts after new data
    }

    #[test]
    fn histogram_merge_concatenates_values() {
        let mut a = Histogram::new();
        a.record(2.0);
        a.record(1.0);
        let mut b = Histogram::new();
        b.record(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 8.0);
        assert_eq!(a.quantile(0.0), 1.0);
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty, a, "merge into empty must reproduce the source");
    }

    #[test]
    fn timeseries_order_and_queries() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.record(SimTime::from_micros(1), 10.0);
        ts.record(SimTime::from_micros(5), 20.0);
        ts.record(SimTime::from_micros(9), 30.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.last(), Some(30.0));
        assert_eq!(ts.mean_since(SimTime::from_micros(5)), 25.0);
        assert_eq!(ts.mean_since(SimTime::from_micros(100)), 0.0);
    }

    #[test]
    #[should_panic(expected = "recorded in order")]
    fn timeseries_out_of_order_panics() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_micros(5), 1.0);
        ts.record(SimTime::from_micros(1), 2.0);
    }
}
