//! Time-ordered event queue with deterministic tie-breaking.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pcn_types::{SimDuration, SimTime};

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A discrete-event queue over event type `E`.
///
/// Events scheduled for the same instant pop in scheduling order (FIFO), so
/// simulation runs are bit-reproducible regardless of heap internals.
/// Popping advances the queue's clock; scheduling into the past is a bug
/// and panics.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.heap.push(Reverse(Scheduled {
            time: at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let at = self
            .now
            .checked_add(delay)
            .expect("schedule time overflowed");
        self.schedule_at(at, event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.time)
    }

    /// Drains events up to and including `until`, calling `f` for each.
    /// The clock ends at `until` (or the last event time if later events
    /// remain).
    pub fn run_until<F>(&mut self, until: SimTime, mut f: F)
    where
        F: FnMut(SimTime, E, &mut Self),
    {
        while let Some(t) = self.peek_time() {
            if t > until {
                break;
            }
            let (time, ev) = self.pop().expect("peeked");
            f(time, ev, self);
        }
        if self.now < until {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(30), "c");
        q.schedule_at(SimTime::from_micros(10), "a");
        q.schedule_at(SimTime::from_micros(20), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_on_ties() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_millis(3), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(3_000));
        assert_eq!(q.now(), t);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), ());
        q.pop();
        q.schedule_at(SimTime::from_micros(5), ());
    }

    #[test]
    fn run_until_drains_prefix() {
        let mut q = EventQueue::new();
        for i in 1..=5u64 {
            q.schedule_at(SimTime::from_micros(i * 10), i);
        }
        let mut seen = Vec::new();
        q.run_until(SimTime::from_micros(30), |_, e, _| seen.push(e));
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.now(), SimTime::from_micros(30));
    }

    #[test]
    fn run_until_handler_can_reschedule() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(1), 0u64);
        let mut count = 0;
        q.run_until(SimTime::from_micros(100), |t, _, q| {
            count += 1;
            if count < 5 {
                q.schedule_at(t + SimDuration::from_micros(1), count);
            }
        });
        assert_eq!(count, 5);
    }

    #[test]
    fn run_until_advances_clock_when_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.run_until(SimTime::from_micros(77), |_, _, _| {});
        assert_eq!(q.now(), SimTime::from_micros(77));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(9), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
        assert_eq!(q.now(), SimTime::ZERO);
    }
}
