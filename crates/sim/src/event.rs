//! Time-ordered event queue with deterministic tie-breaking.
//!
//! Two interchangeable backends implement the same total order —
//! `(time, scheduling sequence)`, i.e. FIFO among events scheduled for
//! the same instant:
//!
//! * **Calendar queue** ([`EventQueue::new`], the default): a two-level
//!   bucketed time wheel. Discrete-event simulations schedule almost
//!   every event a short, fixed distance ahead (`now + hop_delay`, the
//!   τ tick), so a ring of 1 ms buckets covering the next ~4 s absorbs
//!   nearly all traffic with O(1) amortized push/pop; the rare
//!   far-future event (a long deadline) waits in an overflow binary
//!   heap and migrates into the ring when its bucket comes up. Events
//!   scheduled for exactly the current instant bypass the ring through
//!   a FIFO lane, which keeps the extremely common `schedule_at(now, …)`
//!   pattern (queue drains, immediate injections) allocation-free and
//!   comparison-free.
//! * **Binary heap** ([`EventQueue::with_heap`]): the classic
//!   `BinaryHeap<(time, seq)>` — O(log n) per operation. Kept as the
//!   reference implementation; the property suite pins the calendar
//!   queue to pop the exact same `(time, event)` sequence.
//!
//! The tie-break contract is part of the simulator's determinism
//! guarantee: runs are bit-reproducible regardless of backend or of
//! either backend's internals.
//!
//! # The world lane
//!
//! Dynamic-world simulations apply *environment* events — a hub outage,
//! a channel closing, a liquidity rebalance — at fixed timestamps, and
//! the outcome must not depend on how many ordinary protocol events
//! happen to share the instant. [`EventQueue::schedule_world_at`] puts
//! an event on the **world lane**: the total order becomes
//! `(time, lane, seq)` with the world lane first, so at any timestamp
//! every world event pops before every normal event, regardless of
//! scheduling order — on both backends. Within a lane, ties stay FIFO.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use pcn_types::{SimDuration, SimTime};

/// Which priority lane an event occupies at its timestamp. At equal
/// times, [`Lane::World`] events pop before [`Lane::Normal`] ones;
/// within a lane, ties pop FIFO (scheduling order).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// Environment mutations (topology/liquidity/traffic timeline).
    World,
    /// Ordinary simulation events.
    Normal,
}

#[derive(Debug)]
struct Scheduled<E> {
    time: SimTime,
    lane: Lane,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.lane == other.lane && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .cmp(&other.time)
            .then(self.lane.cmp(&other.lane))
            .then(self.seq.cmp(&other.seq))
    }
}

/// log2 of the calendar bucket width in microseconds (1024 µs ≈ 1 ms).
const BUCKET_BITS: u32 = 10;
/// Number of ring buckets; the ring spans `NUM_BUCKETS << BUCKET_BITS`
/// microseconds (~4.19 s) ahead of the staged bucket.
const NUM_BUCKETS: usize = 4096;
const BITMAP_WORDS: usize = NUM_BUCKETS / 64;

/// Absolute (virtual) bucket number of a time.
fn vbucket(t: SimTime) -> u64 {
    t.as_micros() >> BUCKET_BITS
}

/// The bucketed-time-wheel backend. See the module docs for the design;
/// the invariants are:
///
/// * `staged` holds the events of virtual bucket `cur_vb`, sorted by
///   `(time, lane, seq)`; `now` never precedes the staged bucket's start.
/// * `at_now` holds **normal-lane** events scheduled for exactly `now`,
///   in scheduling order. Every normal event already staged for time
///   `now` carries a smaller `seq` than any `at_now` event (it was
///   scheduled strictly earlier), so popping staged-events-at-`now`
///   first preserves global FIFO; world-lane events always take the
///   sorted staged path, so lane priority holds at `now` too.
/// * Ring bucket `b % NUM_BUCKETS` holds only events of virtual bucket
///   `b` for `cur_vb < b < cur_vb + NUM_BUCKETS` (skipped buckets are
///   provably empty, so a slot is never shared by two virtual buckets).
/// * `far` holds every event at or beyond the ring horizon; entries
///   migrate into the staged bucket when the cursor reaches them.
struct CalendarCore<E> {
    buckets: Box<[Vec<Scheduled<E>>]>,
    /// One bit per ring bucket: set iff the bucket is non-empty.
    occupied: [u64; BITMAP_WORDS],
    staged: VecDeque<Scheduled<E>>,
    at_now: VecDeque<Scheduled<E>>,
    /// Virtual bucket number currently staged.
    cur_vb: u64,
    far: BinaryHeap<Reverse<Scheduled<E>>>,
    len: usize,
}

impl<E> CalendarCore<E> {
    fn new() -> Self {
        CalendarCore {
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            staged: VecDeque::new(),
            at_now: VecDeque::new(),
            cur_vb: 0,
            far: BinaryHeap::new(),
            len: 0,
        }
    }

    fn set_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] |= 1 << (idx % 64);
    }

    fn clear_bit(&mut self, idx: usize) {
        self.occupied[idx / 64] &= !(1 << (idx % 64));
    }

    /// First occupied virtual bucket after `cur_vb` (exclusive), within
    /// the ring span. Scans the occupancy bitmap in ring order from the
    /// cursor, so the first set bit found is the nearest bucket —
    /// O(1) under steady traffic, O(words) worst case.
    fn next_occupied(&self) -> Option<u64> {
        let base = self.cur_vb - (self.cur_vb % NUM_BUCKETS as u64);
        let cur_idx = (self.cur_vb % NUM_BUCKETS as u64) as usize;
        // Ring positions after the cursor belong to this window; the
        // wrapped ones to the next (`base + NUM_BUCKETS + idx`).
        let hit = |idx: usize| {
            if idx > cur_idx {
                base + idx as u64
            } else {
                base + NUM_BUCKETS as u64 + idx as u64
            }
        };
        let cur_word = cur_idx / 64;
        // Bits strictly above the cursor within its own word.
        let mask_above = if cur_idx % 64 == 63 {
            0
        } else {
            u64::MAX << (cur_idx % 64 + 1)
        };
        let word = self.occupied[cur_word] & mask_above;
        if word != 0 {
            return Some(hit(cur_word * 64 + word.trailing_zeros() as usize));
        }
        // Remaining words of this window, then the wrapped words, then
        // the cursor word's low bits (next window).
        for w in (cur_word + 1)..BITMAP_WORDS {
            let word = self.occupied[w];
            if word != 0 {
                return Some(hit(w * 64 + word.trailing_zeros() as usize));
            }
        }
        for w in 0..cur_word {
            let word = self.occupied[w];
            if word != 0 {
                return Some(hit(w * 64 + word.trailing_zeros() as usize));
            }
        }
        let word = self.occupied[cur_word] & !mask_above;
        if word != 0 {
            return Some(hit(cur_word * 64 + word.trailing_zeros() as usize));
        }
        None
    }

    fn push(&mut self, s: Scheduled<E>, now: SimTime) {
        self.len += 1;
        if s.time == now && s.lane == Lane::Normal {
            // The allocation-free bypass is normal-lane only: world
            // events at `now` must overtake at-now events regardless of
            // seq, so they take the sorted staged path below.
            self.at_now.push_back(s);
            return;
        }
        let b = vbucket(s.time);
        debug_assert!(b >= self.cur_vb, "future event behind the cursor");
        if b == self.cur_vb {
            // Rare: a sub-bucket-width delay (or an at-`now` world
            // event) landing in the staged bucket. `seq` is maximal
            // within its lane, so ordering by `(time, lane)` finds the
            // insertion point.
            let pos = self
                .staged
                .partition_point(|e| (e.time, e.lane) <= (s.time, s.lane));
            self.staged.insert(pos, s);
        } else if b < self.cur_vb + NUM_BUCKETS as u64 {
            let idx = (b % NUM_BUCKETS as u64) as usize;
            self.buckets[idx].push(s);
            self.set_bit(idx);
        } else {
            self.far.push(Reverse(s));
        }
    }

    fn pop(&mut self, now: SimTime) -> Option<Scheduled<E>> {
        loop {
            if let Some(front) = self.staged.front() {
                // A staged event at exactly `now` was scheduled before
                // anything in `at_now` (smaller seq): it goes first.
                let s = if front.time > now && !self.at_now.is_empty() {
                    self.at_now.pop_front()
                } else {
                    self.staged.pop_front()
                };
                self.len -= 1;
                return s;
            }
            if let Some(s) = self.at_now.pop_front() {
                self.len -= 1;
                return Some(s);
            }
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
    }

    /// Moves the cursor to the earliest non-empty virtual bucket (ring
    /// or far heap) and stages it, sorted by `(time, seq)`.
    fn advance(&mut self) {
        let ring_next = self.next_occupied();
        let far_next = self.far.peek().map(|Reverse(s)| vbucket(s.time));
        let candidate = match (ring_next, far_next) {
            (Some(r), Some(f)) => r.min(f),
            (Some(r), None) => r,
            (None, Some(f)) => f,
            (None, None) => unreachable!("advance called on an empty calendar"),
        };
        self.cur_vb = candidate;
        let idx = (candidate % NUM_BUCKETS as u64) as usize;
        self.clear_bit(idx);
        let mut bucket = std::mem::take(&mut self.buckets[idx]);
        // Far events whose bucket has come up migrate into the stage.
        while let Some(Reverse(s)) = self.far.peek() {
            if vbucket(s.time) != candidate {
                break;
            }
            let Reverse(s) = self.far.pop().expect("peeked");
            bucket.push(s);
        }
        bucket.sort_unstable();
        debug_assert!(self.staged.is_empty());
        self.staged.extend(bucket.drain(..));
        // Hand the (now empty) allocation back to the ring slot.
        self.buckets[idx] = bucket;
    }

    fn peek_time(&self, now: SimTime) -> Option<SimTime> {
        if let Some(front) = self.staged.front() {
            return Some(if self.at_now.is_empty() {
                front.time
            } else {
                front.time.min(now)
            });
        }
        if !self.at_now.is_empty() {
            return Some(now);
        }
        let ring = self.next_occupied().and_then(|abs| {
            let idx = (abs % NUM_BUCKETS as u64) as usize;
            self.buckets[idx].iter().map(|s| s.time).min()
        });
        let far = self.far.peek().map(|Reverse(s)| s.time);
        match (ring, far) {
            (Some(r), Some(f)) => Some(r.min(f)),
            (Some(r), None) => Some(r),
            (None, Some(f)) => Some(f),
            (None, None) => None,
        }
    }
}

/// The reference backend: a plain binary heap over `(time, seq)`.
struct HeapCore<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
}

impl<E> HeapCore<E> {
    fn new() -> Self {
        HeapCore {
            heap: BinaryHeap::new(),
        }
    }
}

// The calendar core is ~600 B larger than the heap core; every queue
// lives behind one `Engine`, so the size skew is irrelevant and boxing
// would only add a pointer chase to the hot path.
#[allow(clippy::large_enum_variant)]
enum Core<E> {
    Calendar(CalendarCore<E>),
    Heap(HeapCore<E>),
}

/// A discrete-event queue over event type `E`.
///
/// Events scheduled for the same instant pop in scheduling order (FIFO), so
/// simulation runs are bit-reproducible regardless of the backing data
/// structure ([`EventQueue::new`] builds the calendar queue,
/// [`EventQueue::with_heap`] the reference binary heap — both pop the
/// identical sequence). Popping advances the queue's clock; scheduling
/// into the past is a bug and panics.
pub struct EventQueue<E> {
    core: Core<E>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field(
                "backend",
                &match self.core {
                    Core::Calendar(_) => "calendar",
                    Core::Heap(_) => "heap",
                },
            )
            .field("len", &self.len())
            .field("now", &self.now)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty calendar-queue-backed queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            core: Core::Calendar(CalendarCore::new()),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Creates an empty queue backed by the reference binary heap.
    pub fn with_heap() -> Self {
        EventQueue {
            core: Core::Heap(HeapCore::new()),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.core {
            Core::Calendar(c) => c.len,
            Core::Heap(h) => h.heap.len(),
        }
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at` on the normal lane.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.schedule_at_in(at, Lane::Normal, event);
    }

    /// Schedules `event` at absolute time `at` on the **world lane**: at
    /// its timestamp it pops before every normal-lane event, whatever
    /// the scheduling order was (see the module docs). Used for
    /// environment mutations that must apply before any same-instant
    /// protocol event observes the world.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_world_at(&mut self, at: SimTime, event: E) {
        self.schedule_at_in(at, Lane::World, event);
    }

    /// Schedules `event` at `at` on an explicit [`Lane`].
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub fn schedule_at_in(&mut self, at: SimTime, lane: Lane, event: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let s = Scheduled {
            time: at,
            lane,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        match &mut self.core {
            Core::Calendar(c) => c.push(s, self.now),
            Core::Heap(h) => h.heap.push(Reverse(s)),
        }
    }

    /// Pre-sizes the internal storage for roughly `per_bucket` events
    /// per calendar bucket (plus the staging/overflow structures), so a
    /// run whose event density stays under that figure schedules and
    /// pops without allocating from the start. Without this, ring
    /// buckets warm up lazily — allocation-free only after the ring has
    /// wrapped once (~4.2 s of simulated time). No-op on the heap
    /// backend beyond reserving the heap itself.
    pub fn preallocate(&mut self, per_bucket: usize) {
        match &mut self.core {
            Core::Calendar(c) => {
                for b in c.buckets.iter_mut() {
                    b.reserve(per_bucket);
                }
                c.staged.reserve(per_bucket * 4);
                c.at_now.reserve(per_bucket * 4);
                c.far.reserve(per_bucket * 16);
            }
            Core::Heap(h) => h.heap.reserve(per_bucket * NUM_BUCKETS),
        }
    }

    /// Schedules `event` after `delay` from now.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        let at = self
            .now
            .checked_add(delay)
            .expect("schedule time overflowed");
        self.schedule_at(at, event);
    }

    /// Pops the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = match &mut self.core {
            Core::Calendar(c) => c.pop(self.now)?,
            Core::Heap(h) => {
                let Reverse(s) = h.heap.pop()?;
                s
            }
        };
        self.now = s.time;
        Some((s.time, s.event))
    }

    /// Time of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.core {
            Core::Calendar(c) => c.peek_time(self.now),
            Core::Heap(h) => h.heap.peek().map(|Reverse(s)| s.time),
        }
    }

    /// Drains events up to and including `until`, calling `f` for each.
    /// The clock ends at `until` (or the last event time if later events
    /// remain).
    pub fn run_until<F>(&mut self, until: SimTime, mut f: F)
    where
        F: FnMut(SimTime, E, &mut Self),
    {
        while let Some(t) = self.peek_time() {
            if t > until {
                break;
            }
            let (time, ev) = self.pop().expect("peeked");
            f(time, ev, self);
        }
        if self.now < until {
            self.now = until;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both backends, so every behavioural test pins them equally.
    fn backends() -> [EventQueue<u64>; 2] {
        [EventQueue::new(), EventQueue::with_heap()]
    }

    #[test]
    fn orders_by_time() {
        for mut q in [EventQueue::new(), EventQueue::with_heap()] {
            q.schedule_at(SimTime::from_micros(30), "c");
            q.schedule_at(SimTime::from_micros(10), "a");
            q.schedule_at(SimTime::from_micros(20), "b");
            assert_eq!(q.len(), 3);
            assert_eq!(q.pop().unwrap().1, "a");
            assert_eq!(q.pop().unwrap().1, "b");
            assert_eq!(q.pop().unwrap().1, "c");
            assert!(q.is_empty());
        }
    }

    #[test]
    fn fifo_on_ties() {
        for mut q in backends() {
            let t = SimTime::from_micros(5);
            for i in 0..10 {
                q.schedule_at(t, i);
            }
            for i in 0..10 {
                assert_eq!(q.pop().unwrap().1, i);
            }
        }
    }

    #[test]
    fn fifo_among_at_now_and_staged_events() {
        // Events staged earlier for time T must pop before events
        // scheduled *at* T for T (they carry smaller seq), and both
        // before anything later — across bucket boundaries.
        for mut q in backends() {
            let t = SimTime::from_micros(50_000);
            q.schedule_at(t, 0); // staged long in advance
            q.schedule_at(SimTime::from_micros(10), 1);
            assert_eq!(q.pop().unwrap().1, 1);
            q.schedule_at(t, 2); // still ahead of now
            assert_eq!(q.pop().unwrap(), (t, 0));
            // now == t: these two join the at-now lane.
            q.schedule_at(t, 3);
            q.schedule_at(t + SimDuration::from_micros(1), 5);
            q.schedule_at(t, 4);
            assert_eq!(q.pop().unwrap(), (t, 2));
            assert_eq!(q.pop().unwrap(), (t, 3));
            assert_eq!(q.pop().unwrap(), (t, 4));
            assert_eq!(q.pop().unwrap().1, 5);
            assert!(q.is_empty());
        }
    }

    #[test]
    fn far_future_events_cross_the_ring_horizon() {
        // Ring horizon is ~4.19 s; 60 s and 3600 s events overflow to
        // the far heap and must still pop in exact order, interleaved
        // with near events scheduled later.
        for mut q in backends() {
            q.schedule_at(SimTime::from_micros(3_600_000_000), 9);
            q.schedule_at(SimTime::from_micros(60_000_000), 7);
            q.schedule_at(SimTime::from_micros(1_000), 1);
            assert_eq!(q.pop().unwrap().1, 1);
            // From t=1ms, 59.999 s ahead is still beyond the horizon.
            q.schedule_at(SimTime::from_micros(59_000_000), 5);
            assert_eq!(q.pop().unwrap().1, 5);
            // Now 60 s is near: schedule a tie — FIFO with the migrated
            // far event (smaller seq first).
            q.schedule_at(SimTime::from_micros(60_000_000), 8);
            assert_eq!(q.pop().unwrap(), (SimTime::from_micros(60_000_000), 7));
            assert_eq!(q.pop().unwrap(), (SimTime::from_micros(60_000_000), 8));
            assert_eq!(q.pop().unwrap().1, 9);
        }
    }

    #[test]
    fn sparse_gaps_jump_buckets() {
        // Non-adjacent buckets with wrap-around: the cursor must jump
        // straight to the next occupied bucket, including after the
        // ring index wraps past NUM_BUCKETS.
        for mut q in backends() {
            let ms = |m: u64| SimTime::from_micros(m * 1000);
            q.schedule_at(ms(1), 1);
            q.schedule_at(ms(4000), 2); // near the end of the first window
            q.schedule_at(ms(2), 11);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 11);
            assert_eq!(q.pop().unwrap().1, 2);
            // Cursor deep into the ring; wrap into the next window.
            q.schedule_at(ms(4000) + SimDuration::from_micros(10), 3);
            q.schedule_at(ms(7000), 4); // wraps modulo NUM_BUCKETS
            assert_eq!(q.pop().unwrap().1, 3);
            assert_eq!(q.pop().unwrap().1, 4);
            assert!(q.pop().is_none());
        }
    }

    #[test]
    fn clock_advances_on_pop() {
        for mut q in backends() {
            q.schedule_after(SimDuration::from_millis(3), 0);
            assert_eq!(q.now(), SimTime::ZERO);
            let (t, _) = q.pop().unwrap();
            assert_eq!(t, SimTime::from_micros(3_000));
            assert_eq!(q.now(), t);
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), ());
        q.pop();
        q.schedule_at(SimTime::from_micros(5), ());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_past_panics_heap() {
        let mut q = EventQueue::with_heap();
        q.schedule_at(SimTime::from_micros(10), ());
        q.pop();
        q.schedule_at(SimTime::from_micros(5), ());
    }

    #[test]
    fn run_until_drains_prefix() {
        for mut q in backends() {
            for i in 1..=5u64 {
                q.schedule_at(SimTime::from_micros(i * 10), i);
            }
            let mut seen = Vec::new();
            q.run_until(SimTime::from_micros(30), |_, e, _| seen.push(e));
            assert_eq!(seen, vec![1, 2, 3]);
            assert_eq!(q.len(), 2);
            assert_eq!(q.now(), SimTime::from_micros(30));
        }
    }

    #[test]
    fn run_until_handler_can_reschedule() {
        for mut q in backends() {
            q.schedule_at(SimTime::from_micros(1), 0u64);
            let mut count = 0;
            q.run_until(SimTime::from_micros(100), |t, _, q| {
                count += 1;
                if count < 5 {
                    q.schedule_at(t + SimDuration::from_micros(1), count);
                }
            });
            assert_eq!(count, 5);
        }
    }

    #[test]
    fn run_until_advances_clock_when_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.run_until(SimTime::from_micros(77), |_, _, _| {});
        assert_eq!(q.now(), SimTime::from_micros(77));
    }

    #[test]
    fn peek_does_not_advance() {
        for mut q in backends() {
            q.schedule_at(SimTime::from_micros(9), 0);
            assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
            assert_eq!(q.now(), SimTime::ZERO);
        }
    }

    #[test]
    fn peek_sees_at_now_and_far_events() {
        for mut q in backends() {
            assert_eq!(q.peek_time(), None);
            q.schedule_at(SimTime::from_micros(10_000_000), 1); // far
            assert_eq!(q.peek_time(), Some(SimTime::from_micros(10_000_000)));
            q.schedule_at(SimTime::from_micros(40_000), 2); // ring
            assert_eq!(q.peek_time(), Some(SimTime::from_micros(40_000)));
            q.pop();
            q.schedule_at(q.now(), 3); // at-now lane
            assert_eq!(q.peek_time(), Some(q.now()));
        }
    }

    /// World-lane events pop before normal events sharing their
    /// timestamp, whatever the scheduling order — including events
    /// scheduled for exactly `now` (the at-now bypass) and events staged
    /// far in advance.
    #[test]
    fn world_lane_overtakes_normal_events_at_equal_times() {
        for mut q in backends() {
            let t = SimTime::from_micros(5_000);
            q.schedule_at(t, 1); // normal, staged early, smallest seq
            q.schedule_world_at(t, 100); // world, scheduled later
            q.schedule_at(t, 2);
            q.schedule_world_at(t, 101);
            let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(
                order,
                vec![100, 101, 1, 2],
                "world lane first, FIFO within each lane"
            );
        }
    }

    #[test]
    fn world_lane_at_now_overtakes_the_at_now_fifo() {
        for mut q in backends() {
            let t = SimTime::from_micros(10);
            q.schedule_at(t, 0);
            assert_eq!(q.pop().unwrap(), (t, 0));
            // now == t: normal events ride the at-now lane; a world
            // event scheduled afterwards must still pop first.
            q.schedule_at(t, 1);
            q.schedule_at(t, 2);
            q.schedule_world_at(t, 9);
            assert_eq!(q.pop().unwrap(), (t, 9));
            assert_eq!(q.pop().unwrap(), (t, 1));
            assert_eq!(q.pop().unwrap(), (t, 2));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn world_lane_respects_time_ordering() {
        for mut q in backends() {
            q.schedule_world_at(SimTime::from_micros(30), 3);
            q.schedule_at(SimTime::from_micros(10), 1);
            // Earlier normal events still pop before later world events.
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 3);
        }
    }

    /// The backends pop identical `(time, lane, seq-order)` sequences
    /// for a deterministic pseudo-random interleaving of schedules and
    /// pops with heavy timestamp duplication and occasional world-lane
    /// events (the calendar/heap equivalence in miniature; the full
    /// property test lives in the workspace `tests/property_tests.rs`).
    #[test]
    fn backends_agree_on_interleaved_schedules() {
        let mut cal = EventQueue::new();
        let mut heap = EventQueue::with_heap();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut popped = 0u32;
        for i in 0..5_000u64 {
            let r = next();
            if r % 3 == 0 && popped < i as u32 {
                let a = cal.pop();
                let b = heap.pop();
                assert_eq!(a, b, "pop {i}");
                popped += 1;
            } else {
                // Delays cluster on 0 and a few fixed values, with the
                // occasional far-future outlier — the engine's profile.
                let delay = match r % 7 {
                    0 | 1 => 0,
                    2 => 40_000,
                    3 => 200_000,
                    4 => (r >> 8) % 1_000,
                    5 => 3_000_000,
                    _ => 5_000_000 + (r >> 8) % 10_000_000,
                };
                let at = cal.now() + SimDuration::from_micros(delay);
                // ~6% of events ride the world lane (a dynamic-world
                // timeline is sparse next to protocol traffic).
                if r % 16 == 1 {
                    cal.schedule_world_at(at, i);
                    heap.schedule_world_at(at, i);
                } else {
                    cal.schedule_after(SimDuration::from_micros(delay), i);
                    heap.schedule_after(SimDuration::from_micros(delay), i);
                }
            }
        }
        loop {
            let a = cal.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
