//! Deterministic discrete-event simulation core.
//!
//! Replaces the paper's MATLAB + LND-testnet substrate (§V-A) with a
//! single-threaded, bit-reproducible discrete-event engine:
//!
//! * [`EventQueue`] — a time-ordered queue with deterministic FIFO
//!   tie-breaking; the heart of every experiment run.
//! * [`SimRng`] — a seeded RNG wrapper with labelled forking, so each
//!   subsystem (topology, workload, routing jitter) draws from an
//!   independent, reproducible stream.
//! * [`dist`] — sampling distributions (exponential, Poisson, log-normal,
//!   Pareto, Zipf, empirical) implemented from first principles.
//! * [`metrics`] — counters, histograms and time series used by the
//!   evaluation harness.
//!
//! # Examples
//!
//! ```
//! use pcn_sim::EventQueue;
//! use pcn_types::{SimDuration, SimTime};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut q = EventQueue::new();
//! q.schedule_after(SimDuration::from_millis(10), Ev::Pong);
//! q.schedule_after(SimDuration::from_millis(5), Ev::Ping);
//! assert_eq!(q.pop(), Some((SimTime::from_micros(5_000), Ev::Ping)));
//! assert_eq!(q.pop(), Some((SimTime::from_micros(10_000), Ev::Pong)));
//! assert_eq!(q.pop(), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
mod event;
pub mod metrics;
mod rng;

pub use event::{EventQueue, Lane};
pub use rng::SimRng;
