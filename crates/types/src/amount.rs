//! Fixed-point token amounts and payment rates.
//!
//! All fund accounting in the simulator uses [`Amount`], a `u64` count of
//! *millitokens* (1/1000 of a token). Fixed-point arithmetic keeps channel
//! conservation exact: floating-point drift in balances would make the
//! deadlock experiments unsound. Rates (tokens/second) are only used inside
//! controllers and cross into funds through explicit conversions.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// Number of millitokens per token.
const MILLIS_PER_TOKEN: u64 = 1_000;

/// A non-negative quantity of funds, stored as millitokens.
///
/// Arithmetic via `+`/`-` panics on overflow/underflow in both debug and
/// release builds (channel accounting bugs must never wrap); use
/// [`Amount::checked_sub`] and [`Amount::saturating_sub`] where a shortfall
/// is an expected outcome.
///
/// # Examples
///
/// ```
/// use pcn_types::Amount;
///
/// let a = Amount::from_tokens(5);
/// let b = Amount::from_millitokens(2_500);
/// assert_eq!((a + b).to_tokens_f64(), 7.5);
/// assert_eq!(a.checked_sub(b), Some(Amount::from_millitokens(2_500)));
/// assert_eq!(b.checked_sub(a), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Amount(u64);

impl Amount {
    /// The zero amount.
    pub const ZERO: Amount = Amount(0);
    /// The largest representable amount.
    pub const MAX: Amount = Amount(u64::MAX);

    /// Creates an amount from whole tokens.
    ///
    /// # Panics
    ///
    /// Panics if `tokens * 1000` overflows `u64` (≈ 1.8e16 tokens).
    pub const fn from_tokens(tokens: u64) -> Self {
        match tokens.checked_mul(MILLIS_PER_TOKEN) {
            Some(m) => Amount(m),
            None => panic!("token amount overflows millitoken representation"),
        }
    }

    /// Creates an amount from millitokens.
    pub const fn from_millitokens(millitokens: u64) -> Self {
        Amount(millitokens)
    }

    /// Creates an amount from a floating-point token value, rounding to the
    /// nearest millitoken and clamping negatives to zero.
    pub fn from_tokens_f64(tokens: f64) -> Self {
        if !tokens.is_finite() || tokens <= 0.0 {
            return Amount::ZERO;
        }
        let millis = (tokens * MILLIS_PER_TOKEN as f64).round();
        if millis >= u64::MAX as f64 {
            Amount::MAX
        } else {
            Amount(millis as u64)
        }
    }

    /// Returns the value in millitokens.
    pub const fn millitokens(self) -> u64 {
        self.0
    }

    /// Returns the whole-token part (truncating).
    pub const fn tokens_floor(self) -> u64 {
        self.0 / MILLIS_PER_TOKEN
    }

    /// Returns the value in tokens as a float (may lose precision above
    /// 2^53 millitokens).
    pub fn to_tokens_f64(self) -> f64 {
        self.0 as f64 / MILLIS_PER_TOKEN as f64
    }

    /// Returns whether this amount is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction; `None` when `rhs > self`.
    pub const fn checked_sub(self, rhs: Amount) -> Option<Amount> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Amount(v)),
            None => None,
        }
    }

    /// Checked addition; `None` on overflow.
    pub const fn checked_add(self, rhs: Amount) -> Option<Amount> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Amount(v)),
            None => None,
        }
    }

    /// Saturating subtraction (floors at zero).
    pub const fn saturating_sub(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_sub(rhs.0))
    }

    /// Saturating addition (caps at [`Amount::MAX`]).
    pub const fn saturating_add(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_add(rhs.0))
    }

    /// Returns the smaller of two amounts.
    pub fn min(self, other: Amount) -> Amount {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the larger of two amounts.
    pub fn max(self, other: Amount) -> Amount {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Multiplies by an integer scale factor.
    ///
    /// # Panics
    ///
    /// Panics on overflow.
    pub fn scale(self, factor: u64) -> Amount {
        Amount(
            self.0
                .checked_mul(factor)
                .expect("amount scaling overflowed"),
        )
    }

    /// Multiplies by a floating factor, rounding to the nearest millitoken.
    /// Negative or non-finite factors yield zero.
    pub fn scale_f64(self, factor: f64) -> Amount {
        Amount::from_tokens_f64(self.to_tokens_f64() * factor)
    }

    /// Divides into `n` near-equal parts; the first `remainder` parts get one
    /// extra millitoken so the parts sum exactly to `self`.
    ///
    /// Returns an empty vector when `n == 0`.
    pub fn split_even(self, n: usize) -> Vec<Amount> {
        if n == 0 {
            return Vec::new();
        }
        let n64 = n as u64;
        let base = self.0 / n64;
        let rem = (self.0 % n64) as usize;
        (0..n).map(|i| Amount(base + u64::from(i < rem))).collect()
    }

    /// Integer ratio `self / other` as a float; `other == 0` yields 0.0.
    pub fn ratio(self, other: Amount) -> f64 {
        if other.is_zero() {
            0.0
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add for Amount {
    type Output = Amount;

    fn add(self, rhs: Amount) -> Amount {
        self.checked_add(rhs).expect("amount addition overflowed")
    }
}

impl AddAssign for Amount {
    fn add_assign(&mut self, rhs: Amount) {
        *self = *self + rhs;
    }
}

impl Sub for Amount {
    type Output = Amount;

    fn sub(self, rhs: Amount) -> Amount {
        self.checked_sub(rhs)
            .expect("amount subtraction underflowed")
    }
}

impl SubAssign for Amount {
    fn sub_assign(&mut self, rhs: Amount) {
        *self = *self - rhs;
    }
}

impl Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |acc, a| acc + a)
    }
}

impl fmt::Debug for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mt", self.0)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let whole = self.0 / MILLIS_PER_TOKEN;
        let frac = self.0 % MILLIS_PER_TOKEN;
        if frac == 0 {
            write!(f, "{whole}")
        } else {
            write!(f, "{whole}.{frac:03}")
        }
    }
}

/// A payment rate in tokens per second.
///
/// Rates live in controller space (price/rate updates of §IV-D) and are
/// intentionally floating point; they convert to funds only through
/// [`Rate::amount_over`].
///
/// # Examples
///
/// ```
/// use pcn_types::{Rate, SimDuration};
///
/// let r = Rate::per_second(2.0);
/// let moved = r.amount_over(SimDuration::from_millis(500));
/// assert_eq!(moved.to_tokens_f64(), 1.0);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug, Default)]
pub struct Rate(f64);

impl Rate {
    /// The zero rate.
    pub const ZERO: Rate = Rate(0.0);

    /// Creates a rate of `tokens_per_second`; negative and non-finite inputs
    /// are clamped to zero.
    pub fn per_second(tokens_per_second: f64) -> Self {
        if tokens_per_second.is_finite() && tokens_per_second > 0.0 {
            Rate(tokens_per_second)
        } else {
            Rate(0.0)
        }
    }

    /// Returns the rate in tokens/second.
    pub const fn tokens_per_second(self) -> f64 {
        self.0
    }

    /// Funds moved at this rate over `dur`, rounded to millitokens.
    pub fn amount_over(self, dur: crate::SimDuration) -> Amount {
        Amount::from_tokens_f64(self.0 * dur.as_secs_f64())
    }

    /// Adds a (possibly negative) delta, flooring at zero.
    pub fn adjusted(self, delta: f64) -> Rate {
        Rate::per_second(self.0 + delta)
    }

    /// Clamps the rate into `[lo, hi]`.
    pub fn clamp(self, lo: Rate, hi: Rate) -> Rate {
        Rate(self.0.clamp(lo.0, hi.0))
    }
}

impl fmt::Display for Rate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} tok/s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn token_conversions() {
        assert_eq!(Amount::from_tokens(3).millitokens(), 3_000);
        assert_eq!(Amount::from_millitokens(1_500).tokens_floor(), 1);
        assert_eq!(Amount::from_millitokens(1_500).to_tokens_f64(), 1.5);
        assert_eq!(Amount::from_tokens_f64(2.0005).millitokens(), 2_001);
        assert_eq!(Amount::from_tokens_f64(-1.0), Amount::ZERO);
        assert_eq!(Amount::from_tokens_f64(f64::NAN), Amount::ZERO);
        assert_eq!(Amount::from_tokens_f64(f64::INFINITY), Amount::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Amount::from_tokens(2);
        let b = Amount::from_tokens(3);
        assert_eq!(a + b, Amount::from_tokens(5));
        assert_eq!(b - a, Amount::from_tokens(1));
        assert_eq!(a.checked_sub(b), None);
        assert_eq!(b.saturating_sub(a), Amount::from_tokens(1));
        assert_eq!(a.saturating_sub(b), Amount::ZERO);
        assert_eq!(Amount::MAX.saturating_add(a), Amount::MAX);
        let mut c = a;
        c += b;
        c -= a;
        assert_eq!(c, b);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn subtraction_underflow_panics() {
        let _ = Amount::from_tokens(1) - Amount::from_tokens(2);
    }

    #[test]
    #[should_panic(expected = "overflowed")]
    fn addition_overflow_panics() {
        let _ = Amount::MAX + Amount::from_millitokens(1);
    }

    #[test]
    fn split_even_sums_exactly() {
        let a = Amount::from_millitokens(10);
        let parts = a.split_even(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().copied().sum::<Amount>(), a);
        assert_eq!(parts[0], Amount::from_millitokens(4));
        assert_eq!(parts[1], Amount::from_millitokens(3));
        assert_eq!(parts[2], Amount::from_millitokens(3));
        assert!(a.split_even(0).is_empty());
    }

    #[test]
    fn min_max_ratio() {
        let a = Amount::from_tokens(2);
        let b = Amount::from_tokens(8);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!(a.ratio(b), 0.25);
        assert_eq!(a.ratio(Amount::ZERO), 0.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Amount::from_tokens(5).to_string(), "5");
        assert_eq!(Amount::from_millitokens(5_250).to_string(), "5.250");
        assert_eq!(format!("{:?}", Amount::from_millitokens(7)), "7mt");
    }

    #[test]
    fn sum_iterator() {
        let total: Amount = (1..=4).map(Amount::from_tokens).sum();
        assert_eq!(total, Amount::from_tokens(10));
    }

    #[test]
    fn rate_basics() {
        let r = Rate::per_second(4.0);
        assert_eq!(
            r.amount_over(SimDuration::from_millis(250)).to_tokens_f64(),
            1.0
        );
        assert_eq!(Rate::per_second(-3.0), Rate::ZERO);
        assert_eq!(Rate::per_second(f64::NAN), Rate::ZERO);
        assert_eq!(r.adjusted(-10.0), Rate::ZERO);
        assert_eq!(r.adjusted(1.0).tokens_per_second(), 5.0);
        assert_eq!(
            r.clamp(Rate::per_second(5.0), Rate::per_second(6.0)),
            Rate::per_second(5.0)
        );
        assert_eq!(r.to_string(), "4.000 tok/s");
    }

    #[test]
    fn scale_operations() {
        assert_eq!(Amount::from_tokens(2).scale(3), Amount::from_tokens(6));
        assert_eq!(
            Amount::from_tokens(2).scale_f64(1.5),
            Amount::from_tokens(3)
        );
        assert_eq!(Amount::from_tokens(2).scale_f64(-1.0), Amount::ZERO);
    }
}
