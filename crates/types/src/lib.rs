//! Shared vocabulary types for the Splicer payment-channel-network (PCN)
//! reproduction.
//!
//! This crate defines the identifiers, fixed-point token amounts, simulated
//! time units, and error types used by every other crate in the workspace.
//! It has no dependencies so that substrate crates (graph, crypto, solver,
//! simulator) can share a common language without pulling in each other.
//!
//! # Examples
//!
//! ```
//! use pcn_types::{Amount, NodeId, SimTime};
//!
//! let alice = NodeId::new(0);
//! let five_tokens = Amount::from_tokens(5);
//! let t = SimTime::ZERO + pcn_types::SimDuration::from_millis(200);
//! assert_eq!(five_tokens.millitokens(), 5_000);
//! assert!(t > SimTime::ZERO);
//! assert_ne!(alice, NodeId::new(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod amount;
mod error;
mod ids;
mod time;

pub use amount::{Amount, Rate};
pub use error::{PcnError, Result};
pub use ids::{ChannelId, EpochId, NodeId, PathId, TuId, TxId};
pub use time::{SimDuration, SimTime};

/// Default protocol constants from the paper's evaluation setup (§V-A).
pub mod constants {
    use super::{Amount, SimDuration};

    /// Minimum transaction-unit value (paper: 1 token).
    pub const MIN_TU: Amount = Amount::from_tokens(1);
    /// Maximum transaction-unit value (paper: 4 tokens).
    pub const MAX_TU: Amount = Amount::from_tokens(4);
    /// Number of multi-paths `k` used by Splicer (paper: 5).
    pub const DEFAULT_PATHS: usize = 5;
    /// Transaction timeout (paper: 3 seconds).
    pub const TX_TIMEOUT: SimDuration = SimDuration::from_millis(3_000);
    /// Price/probe update interval τ (paper: 200 ms).
    pub const UPDATE_INTERVAL: SimDuration = SimDuration::from_millis(200);
    /// Queueing-delay marking threshold T (paper: 400 ms).
    pub const QUEUE_DELAY_THRESHOLD: SimDuration = SimDuration::from_millis(400);
    /// Per-channel queue size bound (paper: 8000 tokens).
    pub const QUEUE_CAPACITY: Amount = Amount::from_tokens(8_000);
    /// Window decrease factor β (paper: 10).
    pub const WINDOW_BETA: f64 = 10.0;
    /// Window increase factor γ (paper: 0.1).
    pub const WINDOW_GAMMA: f64 = 0.1;
    /// Minimum channel size in the fitted Lightning distribution (tokens).
    pub const MIN_CHANNEL_TOKENS: u64 = 10;
    /// Median channel size in the fitted Lightning distribution (tokens).
    pub const MEDIAN_CHANNEL_TOKENS: u64 = 152;
    /// Mean channel size in the fitted Lightning distribution (tokens).
    pub const MEAN_CHANNEL_TOKENS: u64 = 403;
}

#[cfg(test)]
mod tests {
    use super::constants::*;
    use super::*;

    #[test]
    fn constants_match_paper() {
        assert_eq!(MIN_TU, Amount::from_tokens(1));
        assert_eq!(MAX_TU, Amount::from_tokens(4));
        assert_eq!(DEFAULT_PATHS, 5);
        assert_eq!(TX_TIMEOUT.as_millis(), 3_000);
        assert_eq!(UPDATE_INTERVAL.as_millis(), 200);
        assert_eq!(QUEUE_DELAY_THRESHOLD.as_millis(), 400);
        assert_eq!(QUEUE_CAPACITY.tokens_floor(), 8_000);
    }
}
