//! Workspace-wide error type.

use core::fmt;

use crate::{Amount, ChannelId, NodeId, TuId, TxId};

/// Convenient result alias using [`PcnError`].
pub type Result<T> = core::result::Result<T, PcnError>;

/// Errors produced by the PCN crates.
///
/// A single enum (rather than per-crate error types) keeps cross-crate
/// plumbing simple: the simulator, routers and system builders all speak the
/// same failure language, and integration tests can assert on precise
/// variants.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum PcnError {
    /// A node id referenced a node that does not exist.
    UnknownNode(NodeId),
    /// A channel id referenced a channel that does not exist.
    UnknownChannel(ChannelId),
    /// Two nodes are not connected by any path.
    NoPath {
        /// Payment source.
        from: NodeId,
        /// Payment destination.
        to: NodeId,
    },
    /// A directed channel balance was too low for the requested transfer.
    InsufficientFunds {
        /// The channel that lacked funds.
        channel: ChannelId,
        /// Funds requested.
        requested: Amount,
        /// Funds available.
        available: Amount,
    },
    /// A transaction unit was not found (double settle/fail, stale ack).
    UnknownTu(TuId),
    /// A transaction was not found.
    UnknownTx(TxId),
    /// A payment demand violated protocol limits (zero value, self-payment…).
    InvalidDemand(String),
    /// The optimization model was infeasible.
    Infeasible(String),
    /// The optimization model was unbounded.
    Unbounded(String),
    /// A solver hit its iteration or node budget before converging.
    SolverBudgetExceeded(String),
    /// Configuration values were inconsistent or out of range.
    InvalidConfig(String),
    /// A cryptographic envelope failed to open (wrong key, tampered data).
    CryptoFailure(String),
}

impl fmt::Display for PcnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcnError::UnknownNode(n) => write!(f, "unknown node {n}"),
            PcnError::UnknownChannel(c) => write!(f, "unknown channel {c}"),
            PcnError::NoPath { from, to } => write!(f, "no path from {from} to {to}"),
            PcnError::InsufficientFunds {
                channel,
                requested,
                available,
            } => write!(
                f,
                "insufficient funds on {channel}: requested {requested}, available {available}"
            ),
            PcnError::UnknownTu(id) => write!(f, "unknown transaction unit {id}"),
            PcnError::UnknownTx(id) => write!(f, "unknown transaction {id}"),
            PcnError::InvalidDemand(msg) => write!(f, "invalid payment demand: {msg}"),
            PcnError::Infeasible(msg) => write!(f, "model infeasible: {msg}"),
            PcnError::Unbounded(msg) => write!(f, "model unbounded: {msg}"),
            PcnError::SolverBudgetExceeded(msg) => write!(f, "solver budget exceeded: {msg}"),
            PcnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PcnError::CryptoFailure(msg) => write!(f, "crypto failure: {msg}"),
        }
    }
}

impl std::error::Error for PcnError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<PcnError>();
    }

    #[test]
    fn display_messages() {
        assert_eq!(
            PcnError::UnknownNode(NodeId::new(3)).to_string(),
            "unknown node n3"
        );
        assert_eq!(
            PcnError::NoPath {
                from: NodeId::new(1),
                to: NodeId::new(2)
            }
            .to_string(),
            "no path from n1 to n2"
        );
        let e = PcnError::InsufficientFunds {
            channel: ChannelId::new(9),
            requested: Amount::from_tokens(4),
            available: Amount::from_tokens(1),
        };
        assert_eq!(
            e.to_string(),
            "insufficient funds on ch9: requested 4, available 1"
        );
    }

    #[test]
    fn works_with_question_mark() {
        fn inner() -> Result<()> {
            Err(PcnError::InvalidDemand("zero value".into()))
        }
        fn outer() -> Result<()> {
            inner()?;
            Ok(())
        }
        assert!(outer().is_err());
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(PcnError::UnknownTx(TxId::new(7)));
        assert_eq!(e.to_string(), "unknown transaction tx7");
    }
}
