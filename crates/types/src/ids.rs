//! Strongly-typed identifiers for PCN entities.
//!
//! Newtypes keep node indices, channel indices, transaction ids and
//! transaction-unit ids from being confused with each other (C-NEWTYPE).

use core::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name($inner);

        impl $name {
            /// Creates an identifier from its raw index value.
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// Returns the raw index value.
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Returns the identifier as a `usize` suitable for indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in the backing integer type.
            pub fn from_index(index: usize) -> Self {
                Self(<$inner>::try_from(index).expect("id index out of range"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for $inner {
            fn from(id: $name) -> $inner {
                id.0
            }
        }
    };
}

id_type!(
    /// Index of a node (client or smooth node) in a PCN graph.
    NodeId,
    u32,
    "n"
);
id_type!(
    /// Index of an undirected payment channel in a PCN graph.
    ChannelId,
    u32,
    "ch"
);
id_type!(
    /// Identifier of a payment (transaction) `tid` in the workflow of §III-A.
    TxId,
    u64,
    "tx"
);
id_type!(
    /// Identifier of a transaction unit (TU) `tuid`; payments are split into
    /// TUs by the routing protocol (§IV-D).
    TuId,
    u64,
    "tu"
);
id_type!(
    /// Index of an epoch in the bounded-synchronous communication model
    /// (§III-B).
    EpochId,
    u32,
    "e"
);
id_type!(
    /// Index of a path in a per-pair path set.
    PathId,
    u32,
    "p"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn roundtrip_raw() {
        let id = NodeId::new(42);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42);
        assert_eq!(NodeId::from_index(42), id);
        assert_eq!(u32::from(id), 42);
        assert_eq!(NodeId::from(42u32), id);
    }

    #[test]
    fn display_and_debug_prefixes() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(format!("{:?}", ChannelId::new(7)), "ch7");
        assert_eq!(TxId::new(1).to_string(), "tx1");
        assert_eq!(TuId::new(2).to_string(), "tu2");
        assert_eq!(EpochId::new(0).to_string(), "e0");
        assert_eq!(PathId::new(4).to_string(), "p4");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(TxId::new(10) > TxId::new(9));
    }

    #[test]
    fn usable_as_hash_keys() {
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(NodeId::default(), NodeId::new(0));
        assert_eq!(TuId::default().raw(), 0);
    }

    #[test]
    #[should_panic(expected = "id index out of range")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(usize::try_from(u64::from(u32::MAX) + 1).unwrap());
    }
}
