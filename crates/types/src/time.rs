//! Simulated time.
//!
//! The discrete-event simulator measures time in microseconds since the
//! start of a run. Microsecond resolution comfortably covers the paper's
//! time constants (τ = 200 ms updates, 3 s timeouts, multi-hour runs) while
//! keeping all arithmetic in exact integers.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since run start).
///
/// # Examples
///
/// ```
/// use pcn_types::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_millis(200);
/// assert_eq!(t1 - t0, SimDuration::from_millis(200));
/// assert_eq!(t1.as_micros(), 200_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of a simulation run.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time (used as an "infinite" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Returns the raw microsecond count.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns this time in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    pub const fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked advance; `None` on overflow.
    pub const fn checked_add(self, dur: SimDuration) -> Option<SimTime> {
        match self.0.checked_add(dur.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds (clamped to ≥ 0).
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let micros = secs * 1_000_000.0;
        if micros >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(micros.round() as u64)
        }
    }

    /// Returns the duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the duration by an integer factor (saturating).
    pub const fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Divides the duration by a non-zero integer.
    ///
    /// # Panics
    ///
    /// Panics if `divisor == 0`.
    pub const fn div(self, divisor: u64) -> SimDuration {
        SimDuration(self.0 / divisor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, dur: SimDuration) -> SimTime {
        self.checked_add(dur).expect("sim time overflowed")
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, dur: SimDuration) {
        *self = *self + dur;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("sim time subtraction underflowed"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("sim duration overflowed"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("sim duration subtraction underflowed"),
        )
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{}ms", self.as_millis())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units() {
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_micros(100);
        let t2 = t + SimDuration::from_micros(50);
        assert_eq!(t2.as_micros(), 150);
        assert_eq!(t2 - t, SimDuration::from_micros(50));
        assert_eq!(t.saturating_since(t2), SimDuration::ZERO);
        assert_eq!(t2.saturating_since(t), SimDuration::from_micros(50));
        let mut t3 = t;
        t3 += SimDuration::from_micros(1);
        assert_eq!(t3.as_micros(), 101);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn time_sub_underflow_panics() {
        let _ = SimTime::ZERO - SimTime::from_micros(1);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d + d, SimDuration::from_millis(20));
        assert_eq!(d - SimDuration::from_millis(4), SimDuration::from_millis(6));
        assert_eq!(d.saturating_mul(3), SimDuration::from_millis(30));
        assert_eq!(d.div(2), SimDuration::from_millis(5));
        assert!(SimDuration::ZERO.is_zero());
        let mut d2 = d;
        d2 += d;
        assert_eq!(d2.as_millis(), 20);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
        assert_eq!(SimTime::from_micros(1_500_000).to_string(), "1.500000s");
        assert_eq!(format!("{:?}", SimTime::from_micros(3)), "t=3us");
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimDuration::from_micros(1)), None);
        assert!(SimTime::ZERO
            .checked_add(SimDuration::from_micros(1))
            .is_some());
    }
}
