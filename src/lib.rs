//! Reproduction of Splicer (ICDCS 2023). The root crate re-exports the
//! public API; see README.md and the `examples/` directory.

#![forbid(unsafe_code)]

pub use splicer_core::*;
