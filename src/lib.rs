//! Reproduction of Splicer (ICDCS 2023). The root crate re-exports the
//! public API; see README.md and the `examples/` directory.
pub use splicer_core::*;
