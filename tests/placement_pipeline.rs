//! Integration: placement solvers against each other on real topologies.

use pcn_placement::{CostParams, PlacementInstance, PlacementSolver};
use pcn_sim::SimRng;
use pcn_types::NodeId;
use pcn_workload::{Scenario, ScenarioParams};

#[test]
fn exhaustive_and_milp_agree_on_graph_instances() {
    // Build a real small-world instance trimmed to MILP size.
    let mut rng = SimRng::seed(5);
    let g = pcn_graph::watts_strogatz(20, 4, 0.3, rng.as_rand());
    for omega in [0.02, 0.1, 0.5] {
        let inst = PlacementInstance::from_graph(
            &g,
            (4..20).map(NodeId::from_index).collect(),
            (0..4).map(NodeId::from_index).collect(),
            CostParams::paper(omega),
        );
        let exact = PlacementSolver::Exhaustive.solve(&inst, &mut rng).unwrap();
        let milp = PlacementSolver::Milp.solve(&inst, &mut rng).unwrap();
        assert!(
            (exact.balance_cost() - milp.balance_cost()).abs() < 1e-6,
            "ω={omega}: exhaustive {} vs MILP {}",
            exact.balance_cost(),
            milp.balance_cost()
        );
    }
}

#[test]
fn hub_count_monotone_in_omega_on_scenario() {
    let scenario = Scenario::build(ScenarioParams::tiny());
    let mut rng = SimRng::seed(1);
    let mut last_hubs = usize::MAX;
    for omega in [0.0, 0.05, 0.5, 5.0] {
        let inst = PlacementInstance::from_graph(
            &scenario.flat.graph,
            scenario.clients.clone(),
            scenario.candidates.clone(),
            CostParams::paper(omega),
        );
        let plan = PlacementSolver::Exhaustive.solve(&inst, &mut rng).unwrap();
        assert!(
            plan.num_hubs() <= last_hubs,
            "hub count should not grow with ω"
        );
        last_hubs = plan.num_hubs();
    }
    assert_eq!(last_hubs, 1, "huge ω collapses to a single hub");
}

#[test]
fn greedy_stays_within_bound_of_exact() {
    let scenario = Scenario::build(ScenarioParams::tiny());
    let mut rng = SimRng::seed(2);
    let inst = PlacementInstance::from_graph(
        &scenario.flat.graph,
        scenario.clients.clone(),
        scenario.candidates.clone(),
        CostParams::paper(0.04),
    )
    .with_uniform_delta(0.02);
    let exact = PlacementSolver::Exhaustive.solve(&inst, &mut rng).unwrap();
    let greedy = PlacementSolver::DoubleGreedyDeterministic
        .solve(&inst, &mut rng)
        .unwrap();
    // Must be feasible and within the f̂ 1/3-approximation guarantee.
    let fub = inst.infeasible_cost();
    assert!(
        fub - greedy.balance_cost() >= (fub - exact.balance_cost()) / 3.0 - 1e-9,
        "greedy {} vs exact {}",
        greedy.balance_cost(),
        exact.balance_cost()
    );
}

#[test]
fn assignment_targets_are_placed_hubs() {
    let scenario = Scenario::build(ScenarioParams::tiny());
    let mut rng = SimRng::seed(3);
    let inst = PlacementInstance::from_graph(
        &scenario.flat.graph,
        scenario.clients.clone(),
        scenario.candidates.clone(),
        CostParams::paper(0.1),
    );
    let plan = PlacementSolver::Auto.solve(&inst, &mut rng).unwrap();
    for pos in 0..inst.num_clients() {
        let hub = plan.hub_of_client(&inst, pos);
        assert!(plan.hubs().contains(&hub));
    }
}
