//! Integration: the Fig. 1 deadlock phenomenon and global fund safety.

use pcn_routing::channel::NetworkFunds;
use pcn_routing::engine::{payments_from_tuples, Engine, EngineConfig};
use pcn_routing::SchemeConfig;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration};

fn fig1_world() -> (pcn_graph::Graph, NetworkFunds) {
    let mut g = pcn_graph::Graph::new(3);
    g.add_edge(NodeId::new(0), NodeId::new(2)); // A–C
    g.add_edge(NodeId::new(2), NodeId::new(1)); // C–B
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
    (g, funds)
}

fn one_way_load() -> Vec<pcn_routing::tu::Payment> {
    let tuples: Vec<(u64, u32, u32, u64)> = (0..40).map(|i| (i * 400, 0, 1, 2)).collect();
    payments_from_tuples(&tuples, SimDuration::from_secs(3))
}

#[test]
fn naive_routing_deadlocks_the_relay() {
    let (g, funds) = fig1_world();
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::shortest_path(),
        EngineConfig::default(),
        SimRng::seed(1),
    )
    .run(one_way_load());
    assert!(stats.failed > 0, "one-way flow must exhaust C→B: {stats}");
    assert!(
        stats.drained_directions_end > 0,
        "a drained direction is the deadlock symptom"
    );
}

#[test]
fn rate_control_completes_at_least_as_much() {
    let (g, funds) = fig1_world();
    let naive = Engine::new(
        g.clone(),
        funds.clone(),
        SchemeConfig::shortest_path(),
        EngineConfig::default(),
        SimRng::seed(1),
    )
    .run(one_way_load());
    let spider = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(1),
    )
    .run(one_way_load());
    assert!(spider.completed >= naive.completed);
}

#[test]
fn no_funds_are_created_or_destroyed() {
    // Heavier mixed workload on a ring; conservation is debug-asserted
    // inside the engine on every operation and at the end of the run, so
    // simply completing the run in a debug-profile test is the assertion.
    let mut g = pcn_graph::Graph::new(6);
    for i in 0..6u32 {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 6));
    }
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(30));
    let tuples: Vec<(u64, u32, u32, u64)> = (0..120)
        .map(|i| (i * 80, (i % 6) as u32, ((i + 3) % 6) as u32, 1 + (i % 5)))
        .collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(4),
    )
    .run(payments);
    assert!(stats.is_consistent());
    assert_eq!(stats.generated, 120);
}

#[test]
fn dynamic_world_conserves_value_under_churn_and_outage() {
    // The dynamic-world conservation bar: under heavy traffic with
    // channels closing/opening every 500 ms, a hub outage and a
    // rebalance, every expired in-flight TU must refund its locked hops
    // (conservation is debug-asserted inside the engine on every
    // movement and at the end of the run) and the books must balance.
    // Per-channel lock hygiene for closures is pinned by the engine's
    // own `world` unit tests; this exercises the full mixed load.
    use pcn_routing::world::{RebalancePolicy, WorldEvent};
    use pcn_types::SimTime;

    let mut g = pcn_graph::Graph::new(8);
    for i in 0..8u32 {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 8));
        g.add_edge(NodeId::new(i), NodeId::new((i + 3) % 8));
    }
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(12));
    let ms = |m: u64| SimTime::from_micros(m * 1000);
    let mut timeline = Vec::new();
    for k in 1..=16u64 {
        timeline.push(WorldEvent::ChannelClose {
            at: ms(k * 500),
            selector: k.wrapping_mul(0x9e3779b97f4a7c15),
        });
        timeline.push(WorldEvent::ChannelOpen {
            at: ms(k * 500),
            a_sel: k.wrapping_mul(31),
            b_sel: k.wrapping_mul(57) + 1,
            funds_per_side: Amount::from_tokens(12),
        });
    }
    timeline.push(WorldEvent::HubOutage {
        at: ms(2_000),
        hub_rank: 0,
        recover_at: ms(5_000),
    });
    timeline.push(WorldEvent::Rebalance {
        at: ms(4_000),
        policy: RebalancePolicy::Equalize,
    });
    timeline.sort_by_key(WorldEvent::at);
    let events = timeline.len() as u64;
    let tuples: Vec<(u64, u32, u32, u64)> = (0..400)
        .map(|i| (i * 20, (i % 8) as u32, ((i + 4) % 8) as u32, 1 + (i % 6)))
        .collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    for scheme in [SchemeConfig::spider(), SchemeConfig::shortest_path()] {
        let stats = Engine::new(
            g.clone(),
            funds.clone(),
            scheme.clone(),
            EngineConfig::default(),
            SimRng::seed(7),
        )
        .with_timeline(timeline.clone())
        .run(payments.clone());
        assert!(stats.is_consistent());
        assert_eq!(stats.generated, 400);
        assert_eq!(
            stats.world_events_applied,
            events + 1,
            "{}: every event plus the outage recovery must apply",
            scheme.name
        );
        assert!(
            stats.tus_expired_by_close > 0,
            "{}: 2 closures/sec under 20 ms arrivals must catch TUs in flight: {stats}",
            scheme.name
        );
    }
}

#[test]
fn queue_capacity_bounds_are_respected_under_overload() {
    // A 1-token channel bombarded with payments: queues must bound, TUs
    // must abort, and the run must still terminate cleanly.
    let mut g = pcn_graph::Graph::new(2);
    g.add_edge(NodeId::new(0), NodeId::new(1));
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(1));
    let tuples: Vec<(u64, u32, u32, u64)> = (0..200).map(|i| (i * 5, 0, 1, 2)).collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(5),
    )
    .run(payments);
    assert!(stats.failed > 0);
    assert!(stats.is_consistent());
}
