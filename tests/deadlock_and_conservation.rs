//! Integration: the Fig. 1 deadlock phenomenon and global fund safety.

use pcn_routing::channel::NetworkFunds;
use pcn_routing::engine::{payments_from_tuples, Engine, EngineConfig};
use pcn_routing::SchemeConfig;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration};

fn fig1_world() -> (pcn_graph::Graph, NetworkFunds) {
    let mut g = pcn_graph::Graph::new(3);
    g.add_edge(NodeId::new(0), NodeId::new(2)); // A–C
    g.add_edge(NodeId::new(2), NodeId::new(1)); // C–B
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
    (g, funds)
}

fn one_way_load() -> Vec<pcn_routing::tu::Payment> {
    let tuples: Vec<(u64, u32, u32, u64)> = (0..40).map(|i| (i * 400, 0, 1, 2)).collect();
    payments_from_tuples(&tuples, SimDuration::from_secs(3))
}

#[test]
fn naive_routing_deadlocks_the_relay() {
    let (g, funds) = fig1_world();
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::shortest_path(),
        EngineConfig::default(),
        SimRng::seed(1),
    )
    .run(one_way_load());
    assert!(stats.failed > 0, "one-way flow must exhaust C→B: {stats}");
    assert!(
        stats.drained_directions_end > 0,
        "a drained direction is the deadlock symptom"
    );
}

#[test]
fn rate_control_completes_at_least_as_much() {
    let (g, funds) = fig1_world();
    let naive = Engine::new(
        g.clone(),
        funds.clone(),
        SchemeConfig::shortest_path(),
        EngineConfig::default(),
        SimRng::seed(1),
    )
    .run(one_way_load());
    let spider = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(1),
    )
    .run(one_way_load());
    assert!(spider.completed >= naive.completed);
}

#[test]
fn no_funds_are_created_or_destroyed() {
    // Heavier mixed workload on a ring; conservation is debug-asserted
    // inside the engine on every operation and at the end of the run, so
    // simply completing the run in a debug-profile test is the assertion.
    let mut g = pcn_graph::Graph::new(6);
    for i in 0..6u32 {
        g.add_edge(NodeId::new(i), NodeId::new((i + 1) % 6));
    }
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(30));
    let tuples: Vec<(u64, u32, u32, u64)> = (0..120)
        .map(|i| (i * 80, (i % 6) as u32, ((i + 3) % 6) as u32, 1 + (i % 5)))
        .collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(4),
    )
    .run(payments);
    assert!(stats.is_consistent());
    assert_eq!(stats.generated, 120);
}

#[test]
fn queue_capacity_bounds_are_respected_under_overload() {
    // A 1-token channel bombarded with payments: queues must bound, TUs
    // must abort, and the run must still terminate cleanly.
    let mut g = pcn_graph::Graph::new(2);
    g.add_edge(NodeId::new(0), NodeId::new(1));
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(1));
    let tuples: Vec<(u64, u32, u32, u64)> = (0..200).map(|i| (i * 5, 0, 1, 2)).collect();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(5),
    )
    .run(payments);
    assert!(stats.failed > 0);
    assert!(stats.is_consistent());
}
