//! Cross-crate integration: the full Splicer pipeline against baselines on
//! shared worlds.

use pcn_workload::{Scenario, ScenarioParams};
use splicer_core::SystemBuilder;

fn tiny() -> Scenario {
    Scenario::build(ScenarioParams::tiny())
}

#[test]
fn five_schemes_replay_identical_traces() {
    let builder = SystemBuilder::new(tiny());
    let expected = builder.scenario().payments.len() as u64;
    for run in builder.build_all().unwrap() {
        let name = run.name().to_string();
        let report = run.run();
        assert_eq!(report.stats.generated, expected, "{name}");
        assert!(report.stats.is_consistent(), "{name}");
        assert!(
            report.stats.completed + report.stats.failed <= report.stats.generated,
            "{name}"
        );
    }
}

#[test]
fn splicer_beats_baseline_average_on_tiny_world() {
    let builder = SystemBuilder::new(tiny());
    let mut splicer = 0.0;
    let mut others = Vec::new();
    for run in builder.build_all().unwrap() {
        let report = run.run();
        if report.scheme == "Splicer" {
            splicer = report.stats.tsr();
        } else {
            others.push(report.stats.tsr());
        }
    }
    let avg = others.iter().sum::<f64>() / others.len() as f64;
    assert!(
        splicer > avg,
        "Splicer TSR {splicer:.3} should beat the baseline average {avg:.3}"
    );
}

#[test]
fn runs_are_deterministic() {
    let a = SystemBuilder::new(tiny()).build_splicer().unwrap().run();
    let b = SystemBuilder::new(tiny()).build_splicer().unwrap().run();
    assert_eq!(a.stats.completed, b.stats.completed);
    assert_eq!(a.stats.overhead_msgs, b.stats.overhead_msgs);
    assert_eq!(a.stats.generated_value, b.stats.generated_value);
}

#[test]
fn different_seeds_change_the_world() {
    let mut p = ScenarioParams::tiny();
    p.seed = 99;
    let a = Scenario::build(p);
    let b = tiny();
    assert_ne!(a.generated_value(), b.generated_value());
}

#[test]
fn update_interval_sweep_runs() {
    use pcn_routing::EngineConfig;
    use pcn_types::SimDuration;
    for tau in [100u64, 400, 800] {
        let cfg = EngineConfig {
            update_interval: SimDuration::from_millis(tau),
            ..Default::default()
        };
        let report = SystemBuilder::new(tiny())
            .engine_config(cfg)
            .build_splicer()
            .unwrap()
            .run();
        assert!(report.stats.tsr() > 0.0, "τ={tau}");
    }
}
