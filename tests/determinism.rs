//! Determinism regression: the same `ScenarioBuilder` spec must produce
//! identical `RunStats` run twice, the parallel harness must be
//! bit-identical to a single-threaded run of the same grid, and the
//! epoch-versioned path cache must be invisible in the semantic stats
//! (cache-enabled ≡ cache-disabled, bit for bit).

use pcn_harness::{run_spec, run_spec_tuned, ExperimentGrid, RunTuning, SchemeTuning, SeedPolicy};
use pcn_workload::{ScenarioBuilder, ScenarioParams, SchemeChoice};

fn tiny_spec(scheme: SchemeChoice) -> pcn_workload::ScenarioSpec {
    ScenarioBuilder::tiny().scheme(scheme).seed(11).build()
}

#[test]
fn same_spec_runs_identically_twice() {
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
    ] {
        let a = run_spec(&tiny_spec(scheme));
        let b = run_spec(&tiny_spec(scheme));
        assert_eq!(
            a.report.stats,
            b.report.stats,
            "{} diverged across identical runs",
            scheme.name()
        );
    }
}

#[test]
fn four_worker_grid_matches_single_threaded_bit_for_bit() {
    let grid = ExperimentGrid::new(ScenarioParams::tiny())
        .schemes(SchemeChoice::COMPARED)
        .sweep_channel_scale(&[0.5, 2.0]);
    let serial = grid.run(1);
    let parallel = grid.run(4);
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), 10, "2 sweep points × 5 schemes");
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.scheme, p.scheme);
        assert_eq!(s.label, p.label);
        assert_eq!(
            s.stats, p.stats,
            "cell {} ({} / {}) diverged between 1 and 4 workers",
            s.index, s.label, s.scheme
        );
    }
}

#[test]
fn spec_runs_match_grid_cells() {
    // A spec run on its own equals the same world inside a grid.
    let grid = ExperimentGrid::new(ScenarioParams::tiny())
        .schemes([SchemeChoice::Spider])
        .sweep_channel_scale(&[1.0]);
    let from_grid = &grid.run(2)[0];
    let spec = ScenarioBuilder::tiny()
        .channel_scale(1.0)
        .scheme(SchemeChoice::Spider)
        .build();
    let lone = run_spec(&spec);
    assert_eq!(lone.report.stats, from_grid.stats);
}

#[test]
fn path_cache_is_semantics_preserving() {
    // The acceptance bar for the epoch-versioned PathCache: an engine run
    // with the cache enabled produces bit-identical RunStats — success
    // rate, volume, latency histogram, deadlock flags, overhead — to a
    // cache-disabled run on the same seed. Only the diagnostic cache
    // counters may differ. Every scheme exercises a different plan class
    // (Direct, Hubs, FlashMaxFlow mice+elephants, Landmarks, SingleHub).
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = tiny_spec(scheme);
        let with = |cache| {
            run_spec_tuned(
                &spec,
                &RunTuning {
                    path_cache: Some(cache),
                    ..RunTuning::default()
                },
                &SchemeTuning::default(),
            )
        };
        let cached = with(true);
        let uncached = with(false);
        assert_eq!(
            uncached.report.stats.path_cache.lookups(),
            0,
            "{}: the disabled cache must never be consulted",
            scheme.name()
        );
        assert_eq!(
            cached.report.stats.without_cache_counters(),
            uncached.report.stats.without_cache_counters(),
            "{}: cached run diverged from uncached run",
            scheme.name()
        );
    }
}

#[test]
fn footprint_scoped_cache_under_funds_churn() {
    // Funds-churn regression for the footprint-scoped cache: hotspot
    // traffic concentrates payments so channels all over the network
    // move funds constantly. Two claims:
    //
    // (a) footprint-scoped hits stay bit-identical to recomputation for
    //     all six schemes (cached ≡ uncached modulo the diagnostic
    //     counters), and
    // (b) Splicer — whose live-balance hub plans used to invalidate on
    //     *any* movement anywhere and sat at ~0% hit rate — now sustains
    //     a nonzero steady-state hit rate, because funds movements on
    //     channels outside a plan's footprint no longer stale it and the
    //     topology-only access legs never stale at all.
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = ScenarioBuilder::tiny()
            .hotspot(0.5, 1.5)
            .scheme(scheme)
            .seed(23)
            .build();
        let with = |cache| {
            run_spec_tuned(
                &spec,
                &RunTuning {
                    path_cache: Some(cache),
                    ..RunTuning::default()
                },
                &SchemeTuning::default(),
            )
        };
        let cached = with(true);
        let uncached = with(false);
        assert_eq!(
            cached.report.stats.without_cache_counters(),
            uncached.report.stats.without_cache_counters(),
            "{}: cached run diverged from uncached run under funds churn",
            scheme.name()
        );
        let pc = cached.report.stats.path_cache;
        assert!(
            pc.lookups() > 0,
            "{}: churn scenario must exercise the cache",
            scheme.name()
        );
        if scheme == SchemeChoice::Splicer {
            assert!(
                pc.hits > 0 && pc.hit_rate() > 0.0,
                "Splicer live-view cells must sustain a nonzero hit rate \
                 under funds-moving traffic, got {pc:?}"
            );
        }
    }
}

#[test]
fn event_queue_swap_is_semantics_preserving() {
    // The acceptance bar for the calendar-queue event scheduler: a run
    // on the bucketed time wheel produces bit-identical `RunStats` —
    // including every diagnostic counter — to the same seed run on the
    // reference binary heap, for all six schemes. Both backends share
    // one total order, `(time, scheduling sequence)` (FIFO at equal
    // timestamps), so the hot-path rewrite is provably
    // semantics-preserving; the backends are additionally pinned
    // op-for-op by the property suite in `tests/property_tests.rs`.
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = tiny_spec(scheme);
        let with = |calendar| {
            run_spec_tuned(
                &spec,
                &RunTuning {
                    calendar_queue: Some(calendar),
                    ..RunTuning::default()
                },
                &SchemeTuning::default(),
            )
        };
        let calendar = with(true);
        let heap = with(false);
        assert_eq!(
            calendar.report.stats,
            heap.report.stats,
            "{}: calendar-queue run diverged from the binary-heap run",
            scheme.name()
        );
    }
}

/// A timeline mixing every dynamic-world ingredient: a rate surge and
/// lull, a rank-0 hub outage with recovery, steady channel churn, and a
/// mid-run liquidity rebalance — over the 10 s tiny world.
fn dynamic_spec(scheme: SchemeChoice) -> pcn_workload::ScenarioSpec {
    ScenarioBuilder::tiny()
        .timeline(|t| {
            t.rate_shift(2.0, 1.8)
                .rate_shift(7.0, 0.5)
                .hub_outage(3.0, 0, 6.0)
                .churn(0.7)
                .rebalance(5.0)
        })
        .scheme(scheme)
        .seed(17)
        .build()
}

#[test]
fn dynamic_world_is_semantics_preserving() {
    // The first PR where a cache hit must stay bit-identical to
    // recomputation *while the topology itself moves*: for all six
    // schemes, under the full mixed timeline, (a) a cached run equals an
    // uncached run modulo the diagnostic counters, (b) the calendar
    // queue equals the reference heap bit-for-bit (world lane included),
    // and (c) the timeline actually fired and expired TUs somewhere.
    let mut any_expired = 0u64;
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = dynamic_spec(scheme);
        let with = |tuning: RunTuning| run_spec_tuned(&spec, &tuning, &SchemeTuning::default());
        let cached = with(RunTuning {
            path_cache: Some(true),
            ..RunTuning::default()
        });
        let uncached = with(RunTuning {
            path_cache: Some(false),
            ..RunTuning::default()
        });
        assert!(
            cached.report.stats.world_events_applied > 0,
            "{}: the timeline must fire",
            scheme.name()
        );
        assert_eq!(
            cached.report.stats.without_cache_counters(),
            uncached.report.stats.without_cache_counters(),
            "{}: cached run diverged from uncached run under a moving topology",
            scheme.name()
        );
        assert!(
            cached.report.stats.path_cache.inv_topology > 0,
            "{}: mid-run topology movement must fire topology invalidations, got {:?}",
            scheme.name(),
            cached.report.stats.path_cache
        );
        let heap = with(RunTuning {
            calendar_queue: Some(false),
            ..RunTuning::default()
        });
        let calendar = with(RunTuning {
            calendar_queue: Some(true),
            ..RunTuning::default()
        });
        assert_eq!(
            calendar.report.stats,
            heap.report.stats,
            "{}: event-queue backends diverged under the world lane",
            scheme.name()
        );
        any_expired += cached.report.stats.tus_expired_by_close;
    }
    assert!(
        any_expired > 0,
        "across six schemes, churn + outage must catch some TU in flight"
    );
}

/// Heavy-churn timeline tuned to push the graph's tombstones + delta
/// overlay across the CSR compaction watermark several times mid-run.
fn compacting_spec(scheme: SchemeChoice) -> pcn_workload::ScenarioSpec {
    ScenarioBuilder::tiny()
        .timeline(|t| t.churn(20.0))
        .scheme(scheme)
        .seed(31)
        .build()
}

#[test]
fn compaction_under_churn_is_semantics_preserving() {
    // The acceptance bar for the CSR adjacency core: when churn drives
    // the graph across its compaction watermark mid-run — O(V+E)
    // rebuilds that drop tombstones and merge the delta overlay — the
    // run must stay bit-identical in every configuration. For each
    // scheme: (a) compaction actually fired (the test would be vacuous
    // otherwise), (b) cached ≡ uncached modulo the diagnostic counters,
    // and (c) the calendar queue ≡ the reference heap bit-for-bit,
    // compaction counter included.
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = compacting_spec(scheme);
        let with = |tuning: RunTuning| run_spec_tuned(&spec, &tuning, &SchemeTuning::default());
        let cached = with(RunTuning {
            path_cache: Some(true),
            ..RunTuning::default()
        });
        assert!(
            cached.report.stats.graph_compactions > 0,
            "{}: churn(20.0) must cross the compaction watermark, got {} compactions",
            scheme.name(),
            cached.report.stats.graph_compactions
        );
        let uncached = with(RunTuning {
            path_cache: Some(false),
            ..RunTuning::default()
        });
        assert_eq!(
            cached.report.stats.without_cache_counters(),
            uncached.report.stats.without_cache_counters(),
            "{}: cached run diverged from uncached run across compactions",
            scheme.name()
        );
        let heap = with(RunTuning {
            calendar_queue: Some(false),
            ..RunTuning::default()
        });
        let calendar = with(RunTuning {
            calendar_queue: Some(true),
            ..RunTuning::default()
        });
        assert_eq!(
            calendar.report.stats,
            heap.report.stats,
            "{}: event-queue backends diverged across compactions",
            scheme.name()
        );
    }
}

#[test]
fn compacting_grid_is_bit_identical_across_worker_counts() {
    // The compaction-crossing worlds slot bit-identical results for
    // 1, 2, 4 and 8 harness workers — watermark rebuilds are a pure
    // function of the mutation sequence, never of scheduling.
    let mut base = ScenarioParams::tiny();
    base.seed = 31;
    let grid = ExperimentGrid::new(base)
        .schemes(SchemeChoice::COMPARED)
        .sweep_churn_rate(&[20.0]);
    let serial = grid.run(1);
    assert_eq!(serial.len(), 5, "1 churn point × 5 schemes");
    assert!(
        serial.iter().all(|c| c.stats.graph_compactions > 0),
        "every cell must cross the compaction watermark"
    );
    for workers in [2, 4, 8] {
        let parallel = grid.run(workers);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.index, p.index);
            assert_eq!(
                s.stats, p.stats,
                "cell {} ({} / {}) diverged between 1 and {workers} workers",
                s.index, s.label, s.scheme
            );
        }
    }
}

#[test]
fn dynamic_world_grid_is_bit_identical_across_worker_counts() {
    // A churn-rate × scheme grid (the ISSUE's "sweep churn rates ×
    // schemes") must slot bit-identical results for 1, 2, 4 and 8
    // workers — dynamic worlds don't get to relax the harness contract.
    let mut base = ScenarioParams::tiny();
    base.seed = 29;
    base.timeline = pcn_workload::TimelineBuilder::default()
        .rate_shift(2.0, 1.5)
        .hub_outage(3.0, 0, 6.0)
        .build();
    let grid = ExperimentGrid::new(base)
        .schemes(SchemeChoice::COMPARED)
        .sweep_churn_rate(&[0.0, 1.0]);
    let serial = grid.run(1);
    assert_eq!(serial.len(), 10, "2 churn points × 5 schemes");
    assert!(
        serial.iter().all(|c| c.stats.world_events_applied > 0),
        "even the churn-0 point carries the base outage + rate shift"
    );
    for workers in [2, 4, 8] {
        let parallel = grid.run(workers);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.index, p.index);
            assert_eq!(
                s.stats, p.stats,
                "cell {} ({} / {}) diverged between 1 and {workers} workers",
                s.index, s.label, s.scheme
            );
        }
    }
    // Standalone re-runs reproduce grid cells, dynamic world included.
    let cells = grid.cells();
    let lone = ExperimentGrid::run_cell(&cells[7]);
    assert_eq!(lone.stats, serial[7].stats);
}

#[test]
fn sharded_run_is_semantics_preserving() {
    // The acceptance bar for the sharded engine: K partitioned event
    // loops merged over the deterministic hub-handoff mesh produce
    // results identical to the plain single engine, for all six schemes,
    // K ∈ {1, 2, 4}, cached and uncached. Equality tiers:
    //
    // - K = 1 and every uncached run: full bit-identity, diagnostic
    //   cache counters included (a single replica's merged counters are
    //   the counters; a disabled cache counts zero everywhere).
    // - K > 1 cached: identical modulo the cache counters — plan keys
    //   split across K shard-local caches, so hits/misses legitimately
    //   redistribute while every semantic field stays pinned.
    //
    // The same bars then repeat under the PR-5 mixed dynamic timeline
    // (rate shifts, a hub outage, churn, a rebalance), proving world
    // events replicate identically into every shard's world copy.
    let schemes = [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ];
    for scheme in schemes {
        for (label, spec) in [
            ("static", tiny_spec(scheme)),
            ("dynamic", dynamic_spec(scheme)),
        ] {
            let with = |tuning: RunTuning| run_spec_tuned(&spec, &tuning, &SchemeTuning::default());
            for cache in [true, false] {
                let plain = with(RunTuning {
                    path_cache: Some(cache),
                    ..RunTuning::default()
                });
                if label == "dynamic" {
                    assert!(
                        plain.report.stats.world_events_applied > 0,
                        "{} ({label}): the timeline must fire",
                        scheme.name()
                    );
                }
                for k in [1u32, 2, 4] {
                    let sharded = with(RunTuning {
                        path_cache: Some(cache),
                        shards: Some(k),
                        ..RunTuning::default()
                    });
                    if k == 1 || !cache {
                        assert_eq!(
                            plain.report.stats,
                            sharded.report.stats,
                            "{} ({label}, cache={cache}): K={k} sharded run is not \
                             bit-identical to the plain engine",
                            scheme.name()
                        );
                    } else {
                        assert_eq!(
                            plain.report.stats.without_cache_counters(),
                            sharded.report.stats.without_cache_counters(),
                            "{} ({label}): K={k} cached sharded run diverged \
                             semantically from the plain engine",
                            scheme.name()
                        );
                        assert!(
                            sharded.report.stats.path_cache.lookups() > 0,
                            "{} ({label}): K={k} shard-local caches were never \
                             consulted",
                            scheme.name()
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn goal_directed_is_semantics_preserving() {
    // The acceptance bar for goal-directed planning: flipping
    // `use_goal_directed` changes how plans are computed (bidirectional
    // Dijkstra with ALT landmark bounds, batched two-tree hub legs) but
    // not a single planned path. For all six schemes, cached and
    // uncached, plain and K ∈ {1, 2, 4} sharded, a goal-directed run is
    // bit-identical to a plain-search run modulo the diagnostic cache
    // counters and the planner-observability counters
    // (`goal_directed_plans` / `landmark_rebuilds` / `nodes_settled`),
    // which are *about* the toggle and so legitimately differ across it.
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = tiny_spec(scheme);
        let with = |tuning: RunTuning| run_spec_tuned(&spec, &tuning, &SchemeTuning::default());
        for cache in [true, false] {
            let on = with(RunTuning {
                path_cache: Some(cache),
                goal_directed: Some(true),
                ..RunTuning::default()
            });
            let off = with(RunTuning {
                path_cache: Some(cache),
                goal_directed: Some(false),
                ..RunTuning::default()
            });
            assert_eq!(
                on.report
                    .stats
                    .without_cache_counters()
                    .without_planner_counters(),
                off.report
                    .stats
                    .without_cache_counters()
                    .without_planner_counters(),
                "{} (cache={cache}): goal-directed planning changed the run",
                scheme.name()
            );
            assert_eq!(
                off.report.stats.goal_directed_plans,
                0,
                "{}: the disabled accelerator must never plan",
                scheme.name()
            );
            assert_eq!(
                off.report.stats.landmark_rebuilds,
                0,
                "{}: the disabled accelerator must never build landmark tables",
                scheme.name()
            );
            // Schemes whose plans run accelerable (unit-cost Dijkstra)
            // searches must actually route through the accelerator:
            // Flash mice pools, landmark hub legs, direct EDS selection.
            // Splicer/Spider plan with widest-path searches and A2L with
            // single-hub table lookups — nothing to accelerate there.
            if matches!(
                scheme,
                SchemeChoice::Flash | SchemeChoice::Landmark | SchemeChoice::ShortestPath
            ) {
                assert!(
                    on.report.stats.goal_directed_plans > 0,
                    "{}: goal-directed runs must actually use the accelerator",
                    scheme.name()
                );
            }
            // Sharded replicas keep their planner state in lockstep: the
            // semantic planner counters match the plain engine for every
            // K, and per-replica settles sum to the plain engine's total
            // (each plan is computed by exactly one owner).
            for k in [1u32, 2, 4] {
                let sharded = with(RunTuning {
                    path_cache: Some(cache),
                    goal_directed: Some(true),
                    shards: Some(k),
                    ..RunTuning::default()
                });
                if k == 1 || !cache {
                    assert_eq!(
                        on.report.stats,
                        sharded.report.stats,
                        "{} (cache={cache}): K={k} goal-directed sharded run is \
                         not bit-identical to the plain engine",
                        scheme.name()
                    );
                } else {
                    assert_eq!(
                        on.report.stats.without_cache_counters(),
                        sharded.report.stats.without_cache_counters(),
                        "{} (cache={cache}): K={k} goal-directed sharded run \
                         diverged semantically from the plain engine",
                        scheme.name()
                    );
                }
                assert_eq!(
                    on.report.stats.goal_directed_plans,
                    sharded.report.stats.goal_directed_plans,
                    "{}: K={k} replicas diverged on goal_directed_plans",
                    scheme.name()
                );
                assert_eq!(
                    on.report.stats.landmark_rebuilds,
                    sharded.report.stats.landmark_rebuilds,
                    "{}: K={k} replicas diverged on landmark_rebuilds",
                    scheme.name()
                );
            }
        }
    }
    // And the toggle survives a moving topology: the PR-5 mixed dynamic
    // timeline forces landmark-table rebuilds mid-run for an ALT-using
    // scheme, and the runs still agree.
    for scheme in [SchemeChoice::ShortestPath, SchemeChoice::Landmark] {
        let spec = dynamic_spec(scheme);
        let with = |tuning: RunTuning| run_spec_tuned(&spec, &tuning, &SchemeTuning::default());
        let on = with(RunTuning {
            goal_directed: Some(true),
            ..RunTuning::default()
        });
        let off = with(RunTuning {
            goal_directed: Some(false),
            ..RunTuning::default()
        });
        assert_eq!(
            on.report
                .stats
                .without_cache_counters()
                .without_planner_counters(),
            off.report
                .stats
                .without_cache_counters()
                .without_planner_counters(),
            "{} (dynamic): goal-directed planning changed the run",
            scheme.name()
        );
        if scheme == SchemeChoice::ShortestPath {
            assert!(
                on.report.stats.landmark_rebuilds > 1,
                "{} (dynamic): churn must force mid-run landmark rebuilds, got {}",
                scheme.name(),
                on.report.stats.landmark_rebuilds
            );
        }
    }
}

/// An adversarial world mixing every fault ingredient: griefers holding
/// locks past the TU timeout, a circular-demand ring, probabilistic
/// channel drops, delay jitter, and a stalling rogue hub — over the 10 s
/// tiny world.
fn adversarial_spec(scheme: SchemeChoice) -> pcn_workload::ScenarioSpec {
    ScenarioBuilder::tiny()
        .adversary(|a| {
            a.griefers(0.15, 4_000)
                .circular_demand(4, 1.5)
                .drop(0.15, 0.4)
                .delay(0.2, 30)
                .rogue_hub(0, pcn_workload::RogueBehavior::Stall)
        })
        .scheme(scheme)
        .seed(41)
        .build()
}

#[test]
fn adversarial_world_is_semantics_preserving() {
    // The determinism contract does not relax under attack: for all six
    // schemes, under the full fault mix, (a) the fault layer actually
    // fired (the test would be vacuous otherwise), (b) cached ≡ uncached
    // modulo the diagnostic cache counters, (c) the calendar queue ≡ the
    // reference heap bit-for-bit, and (d) K ∈ {1, 2, 4} sharded runs
    // match the plain engine — fault decisions are pure hashes of
    // replicated state, never of scheduling.
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = adversarial_spec(scheme);
        let with = |tuning: RunTuning| run_spec_tuned(&spec, &tuning, &SchemeTuning::default());
        let cached = with(RunTuning {
            path_cache: Some(true),
            ..RunTuning::default()
        });
        assert!(
            cached.report.stats.faults_injected > 0,
            "{}: the fault mix must fire",
            scheme.name()
        );
        assert!(
            cached.report.stats.griefed_locks > 0,
            "{}: griefers must show up in the stats",
            scheme.name()
        );
        let uncached = with(RunTuning {
            path_cache: Some(false),
            ..RunTuning::default()
        });
        assert_eq!(
            cached.report.stats.without_cache_counters(),
            uncached.report.stats.without_cache_counters(),
            "{}: cached run diverged from uncached run under attack",
            scheme.name()
        );
        let heap = with(RunTuning {
            calendar_queue: Some(false),
            ..RunTuning::default()
        });
        let calendar = with(RunTuning {
            calendar_queue: Some(true),
            ..RunTuning::default()
        });
        assert_eq!(
            calendar.report.stats,
            heap.report.stats,
            "{}: event-queue backends diverged under attack",
            scheme.name()
        );
        for k in [1u32, 2, 4] {
            let sharded = with(RunTuning {
                path_cache: Some(false),
                shards: Some(k),
                ..RunTuning::default()
            });
            assert_eq!(
                uncached.report.stats,
                sharded.report.stats,
                "{}: K={k} sharded adversarial run is not bit-identical \
                 to the plain engine",
                scheme.name()
            );
        }
    }
}

#[test]
fn empty_adversary_spec_is_byte_identical_to_the_honest_run() {
    // `Engine::with_faults(FaultPlan::default())` installs nothing and
    // an empty `AdversarySpec` draws zero randomness, so chaining an
    // empty adversary must reproduce the honest run bit for bit —
    // every diagnostic counter included.
    for scheme in [SchemeChoice::Splicer, SchemeChoice::Spider] {
        let honest = run_spec(&tiny_spec(scheme));
        let empty_adv = run_spec(
            &ScenarioBuilder::tiny()
                .adversary(|a| a)
                .scheme(scheme)
                .seed(11)
                .build(),
        );
        assert_eq!(
            honest.report.stats,
            empty_adv.report.stats,
            "{}: an empty adversary spec perturbed the honest run",
            scheme.name()
        );
    }
}

#[test]
fn per_variant_seed_policy_is_reproducible() {
    let grid = ExperimentGrid::new(ScenarioParams::tiny())
        .schemes([SchemeChoice::Spider])
        .seed_policy(SeedPolicy::PerVariant)
        .sweep_mean_tx(&[4.0, 8.0]);
    let a = grid.run(4);
    let b = grid.run(2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.stats, y.stats);
    }
    // Distinct variants draw distinct worlds under PerVariant.
    assert_ne!(a[0].stats.generated_value, a[1].stats.generated_value);
}
