//! Determinism regression: the same `ScenarioBuilder` spec must produce
//! identical `RunStats` run twice, the parallel harness must be
//! bit-identical to a single-threaded run of the same grid, and the
//! epoch-versioned path cache must be invisible in the semantic stats
//! (cache-enabled ≡ cache-disabled, bit for bit).

use pcn_harness::{run_spec, run_spec_tuned, ExperimentGrid, RunTuning, SchemeTuning, SeedPolicy};
use pcn_workload::{ScenarioBuilder, ScenarioParams, SchemeChoice};

fn tiny_spec(scheme: SchemeChoice) -> pcn_workload::ScenarioSpec {
    ScenarioBuilder::tiny().scheme(scheme).seed(11).build()
}

#[test]
fn same_spec_runs_identically_twice() {
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
    ] {
        let a = run_spec(&tiny_spec(scheme));
        let b = run_spec(&tiny_spec(scheme));
        assert_eq!(
            a.report.stats,
            b.report.stats,
            "{} diverged across identical runs",
            scheme.name()
        );
    }
}

#[test]
fn four_worker_grid_matches_single_threaded_bit_for_bit() {
    let grid = ExperimentGrid::new(ScenarioParams::tiny())
        .schemes(SchemeChoice::COMPARED)
        .sweep_channel_scale(&[0.5, 2.0]);
    let serial = grid.run(1);
    let parallel = grid.run(4);
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), 10, "2 sweep points × 5 schemes");
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.index, p.index);
        assert_eq!(s.scheme, p.scheme);
        assert_eq!(s.label, p.label);
        assert_eq!(
            s.stats, p.stats,
            "cell {} ({} / {}) diverged between 1 and 4 workers",
            s.index, s.label, s.scheme
        );
    }
}

#[test]
fn spec_runs_match_grid_cells() {
    // A spec run on its own equals the same world inside a grid.
    let grid = ExperimentGrid::new(ScenarioParams::tiny())
        .schemes([SchemeChoice::Spider])
        .sweep_channel_scale(&[1.0]);
    let from_grid = &grid.run(2)[0];
    let spec = ScenarioBuilder::tiny()
        .channel_scale(1.0)
        .scheme(SchemeChoice::Spider)
        .build();
    let lone = run_spec(&spec);
    assert_eq!(lone.report.stats, from_grid.stats);
}

#[test]
fn path_cache_is_semantics_preserving() {
    // The acceptance bar for the epoch-versioned PathCache: an engine run
    // with the cache enabled produces bit-identical RunStats — success
    // rate, volume, latency histogram, deadlock flags, overhead — to a
    // cache-disabled run on the same seed. Only the diagnostic cache
    // counters may differ. Every scheme exercises a different plan class
    // (Direct, Hubs, FlashMaxFlow mice+elephants, Landmarks, SingleHub).
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = tiny_spec(scheme);
        let with = |cache| {
            run_spec_tuned(
                &spec,
                &RunTuning {
                    path_cache: Some(cache),
                    ..RunTuning::default()
                },
                &SchemeTuning::default(),
            )
        };
        let cached = with(true);
        let uncached = with(false);
        assert_eq!(
            uncached.report.stats.path_cache.lookups(),
            0,
            "{}: the disabled cache must never be consulted",
            scheme.name()
        );
        assert_eq!(
            cached.report.stats.without_cache_counters(),
            uncached.report.stats.without_cache_counters(),
            "{}: cached run diverged from uncached run",
            scheme.name()
        );
    }
}

#[test]
fn footprint_scoped_cache_under_funds_churn() {
    // Funds-churn regression for the footprint-scoped cache: hotspot
    // traffic concentrates payments so channels all over the network
    // move funds constantly. Two claims:
    //
    // (a) footprint-scoped hits stay bit-identical to recomputation for
    //     all six schemes (cached ≡ uncached modulo the diagnostic
    //     counters), and
    // (b) Splicer — whose live-balance hub plans used to invalidate on
    //     *any* movement anywhere and sat at ~0% hit rate — now sustains
    //     a nonzero steady-state hit rate, because funds movements on
    //     channels outside a plan's footprint no longer stale it and the
    //     topology-only access legs never stale at all.
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = ScenarioBuilder::tiny()
            .hotspot(0.5, 1.5)
            .scheme(scheme)
            .seed(23)
            .build();
        let with = |cache| {
            run_spec_tuned(
                &spec,
                &RunTuning {
                    path_cache: Some(cache),
                    ..RunTuning::default()
                },
                &SchemeTuning::default(),
            )
        };
        let cached = with(true);
        let uncached = with(false);
        assert_eq!(
            cached.report.stats.without_cache_counters(),
            uncached.report.stats.without_cache_counters(),
            "{}: cached run diverged from uncached run under funds churn",
            scheme.name()
        );
        let pc = cached.report.stats.path_cache;
        assert!(
            pc.lookups() > 0,
            "{}: churn scenario must exercise the cache",
            scheme.name()
        );
        if scheme == SchemeChoice::Splicer {
            assert!(
                pc.hits > 0 && pc.hit_rate() > 0.0,
                "Splicer live-view cells must sustain a nonzero hit rate \
                 under funds-moving traffic, got {pc:?}"
            );
        }
    }
}

#[test]
fn event_queue_swap_is_semantics_preserving() {
    // The acceptance bar for the calendar-queue event scheduler: a run
    // on the bucketed time wheel produces bit-identical `RunStats` —
    // including every diagnostic counter — to the same seed run on the
    // reference binary heap, for all six schemes. Both backends share
    // one total order, `(time, scheduling sequence)` (FIFO at equal
    // timestamps), so the hot-path rewrite is provably
    // semantics-preserving; the backends are additionally pinned
    // op-for-op by the property suite in `tests/property_tests.rs`.
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let spec = tiny_spec(scheme);
        let with = |calendar| {
            run_spec_tuned(
                &spec,
                &RunTuning {
                    calendar_queue: Some(calendar),
                    ..RunTuning::default()
                },
                &SchemeTuning::default(),
            )
        };
        let calendar = with(true);
        let heap = with(false);
        assert_eq!(
            calendar.report.stats,
            heap.report.stats,
            "{}: calendar-queue run diverged from the binary-heap run",
            scheme.name()
        );
    }
}

#[test]
fn per_variant_seed_policy_is_reproducible() {
    let grid = ExperimentGrid::new(ScenarioParams::tiny())
        .schemes([SchemeChoice::Spider])
        .seed_policy(SeedPolicy::PerVariant)
        .sweep_mean_tx(&[4.0, 8.0]);
    let a = grid.run(4);
    let b = grid.run(2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.stats, y.stats);
    }
    // Distinct variants draw distinct worlds under PerVariant.
    assert_ne!(a[0].stats.generated_value, a[1].stats.generated_value);
}
