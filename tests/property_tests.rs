//! Property-based tests (proptest) over the core invariants, spanning
//! crates: channel conservation, TU splitting, Shamir round trips, path
//! algorithm sanity and Lemma-1 optimality.

use pcn_crypto::{shamir, Fp};
use pcn_graph::{edge_disjoint_widest_paths, Graph};
use pcn_placement::assignment::{balance_cost_for, optimal_assignment};
use pcn_placement::PlacementInstance;
use pcn_routing::channel::NetworkFunds;
use pcn_routing::tu::split_demand;
use pcn_types::{Amount, NodeId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn split_demand_partitions_exactly(millis in 1u64..5_000_000, max_mult in 1u64..10) {
        let value = Amount::from_millitokens(millis);
        let min_tu = Amount::from_tokens(1);
        let max_tu = Amount::from_tokens(max_mult.max(1));
        let parts = split_demand(value, min_tu, max_tu);
        prop_assert_eq!(parts.iter().copied().sum::<Amount>(), value);
        for p in &parts {
            prop_assert!(*p <= max_tu);
        }
        // At most one undersized part (the unavoidable tail).
        let undersized = parts.iter().filter(|p| **p < min_tu).count();
        prop_assert!(undersized <= 1, "{undersized} undersized parts");
    }

    #[test]
    fn channel_ops_conserve_funds(ops in prop::collection::vec((0u8..3, 0u64..5_000), 1..200)) {
        let mut g = Graph::new(2);
        let ch = g.add_edge(NodeId::new(0), NodeId::new(1));
        let mut funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        let total = funds.grand_total();
        for (op, amt) in ops {
            let amt = Amount::from_millitokens(amt);
            let side = NodeId::new((amt.millitokens() % 2) as u32);
            match op {
                0 => { let _ = funds.lock(ch, side, amt); }
                1 => { let locked = funds.locked(ch, side); let _ = funds.settle(ch, side, amt.min(locked)); }
                _ => { let locked = funds.locked(ch, side); let _ = funds.refund(ch, side, amt.min(locked)); }
            }
            prop_assert!(funds.verify_conservation());
            prop_assert_eq!(funds.grand_total(), total);
        }
    }

    #[test]
    fn shamir_roundtrip(secret in 0u64..u64::MAX, threshold in 1usize..6, extra in 0usize..4, seed in 0u64..u64::MAX) {
        let n = threshold + extra;
        let shares = shamir::split(Fp::new(secret), threshold, n, seed);
        let got = shamir::reconstruct(&shares[..threshold]).unwrap();
        prop_assert_eq!(got, Fp::new(secret));
    }

    #[test]
    fn edw_paths_are_disjoint_and_valid(seed in 0u64..1_000, n in 4usize..20, k in 1usize..6) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = pcn_graph::watts_strogatz(n, 2, 0.3, &mut rng);
        let paths = edge_disjoint_widest_paths(
            &g,
            NodeId::new(0),
            NodeId::from_index(n - 1),
            k,
            |e| Some(1.0 + (e.id.index() % 13) as f64),
        );
        prop_assert!(paths.len() <= k);
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            prop_assert!(p.validate(&g).is_ok());
            for c in p.channels() {
                prop_assert!(seen.insert(*c), "channel reused");
            }
        }
    }

    #[test]
    fn lemma1_no_single_client_improvement(seed in 0u64..500) {
        // Moving any single client off its Lemma-1 hub cannot reduce C_B.
        let mut state = seed.wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 997) as f64 / 100.0
        };
        let m = 4;
        let n = 4;
        let zeta: Vec<Vec<f64>> = (0..m).map(|_| (0..n).map(|_| next()).collect()).collect();
        let mut delta = vec![vec![0.0; n]; n];
        let mut eps = vec![vec![0.0; n]; n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = next();
                let e = next();
                delta[a][b] = d;
                delta[b][a] = d;
                eps[a][b] = e;
                eps[b][a] = e;
            }
        }
        let inst = PlacementInstance::from_matrices(
            (10..10 + m as u32).map(NodeId::new).collect(),
            (0..n as u32).map(NodeId::new).collect(),
            zeta, delta, eps, 0.3,
        ).unwrap();
        let placed = vec![true; n];
        let asg = optimal_assignment(&inst, &placed).unwrap();
        let best = balance_cost_for(&inst, &placed);
        for client in 0..m {
            for hub in 0..n {
                if hub == asg[client] { continue; }
                let mut alt = asg.clone();
                alt[client] = hub;
                let cost = inst.balance_cost(&placed, &alt);
                prop_assert!(cost >= best - 1e-9,
                    "client {client} → hub {hub} improved: {cost} < {best}");
            }
        }
    }
}
