//! Property-based tests (proptest) over the core invariants, spanning
//! crates: channel conservation, TU splitting, Shamir round trips, path
//! algorithm sanity, CSR/reference adjacency equivalence, Lemma-1
//! optimality and event-queue backend equivalence.

use pcn_crypto::{shamir, Fp};
use pcn_graph::{edge_disjoint_widest_paths, Graph};
use pcn_placement::assignment::{balance_cost_for, optimal_assignment};
use pcn_placement::PlacementInstance;
use pcn_routing::channel::NetworkFunds;
use pcn_routing::tu::split_demand;
use pcn_sim::EventQueue;
use pcn_types::{Amount, NodeId, SimDuration};
use proptest::prelude::*;

proptest! {
    /// The calendar queue and the reference `BinaryHeap` queue pop
    /// identical `(time, event)` sequences for arbitrary interleavings
    /// of schedules and pops — including heavy timestamp duplication
    /// (delay 0 and a few repeated constants dominate the generator,
    /// exactly the engine's profile), sub-bucket jitter, and far-future
    /// outliers that overflow the calendar ring and must migrate back.
    /// This is the determinism contract the engine's queue swap relies
    /// on: one total order, `(time, lane, scheduling sequence)` — the
    /// world lane (dynamic-world timeline events) popping first at equal
    /// timestamps on both backends.
    #[test]
    fn event_queue_backends_pop_identical_sequences(
        ops in prop::collection::vec((0u8..4, 0u8..8, 0u64..20_000_000, 0u8..10), 1..400),
    ) {
        let mut cal = EventQueue::new();
        let mut heap = EventQueue::with_heap();
        for (i, (kind, dup, jitter, lane)) in ops.into_iter().enumerate() {
            if kind == 0 {
                prop_assert_eq!(cal.peek_time(), heap.peek_time(), "peek at op {}", i);
                prop_assert_eq!(cal.pop(), heap.pop(), "pop at op {}", i);
                prop_assert_eq!(cal.len(), heap.len());
                prop_assert_eq!(cal.now(), heap.now());
            } else {
                // Delays cluster on duplicated constants with occasional
                // arbitrary jitter (including beyond the ring horizon).
                let delay = match dup {
                    0 | 1 => 0,            // exactly `now` — the FIFO lane
                    2 | 3 => 40_000,       // one hop delay
                    4 => 200_000,          // the τ tick
                    5 => 3_000_000,        // a payment deadline
                    6 => jitter % 1_000,   // sub-bucket jitter
                    _ => jitter,           // anything up to 20 s (far heap)
                };
                if lane == 0 {
                    // A sparse sprinkling of world-lane events, landing
                    // on the same duplicated timestamps as the normal
                    // traffic they must overtake.
                    let at = cal.now() + SimDuration::from_micros(delay);
                    cal.schedule_world_at(at, i);
                    heap.schedule_world_at(at, i);
                } else {
                    cal.schedule_after(SimDuration::from_micros(delay), i);
                    heap.schedule_after(SimDuration::from_micros(delay), i);
                }
            }
        }
        // Drain both to the end: the full remaining order must agree.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
    #[test]
    fn split_demand_partitions_exactly(millis in 1u64..5_000_000, max_mult in 1u64..10) {
        let value = Amount::from_millitokens(millis);
        let min_tu = Amount::from_tokens(1);
        let max_tu = Amount::from_tokens(max_mult.max(1));
        let parts = split_demand(value, min_tu, max_tu);
        prop_assert_eq!(parts.iter().copied().sum::<Amount>(), value);
        for p in &parts {
            prop_assert!(*p <= max_tu);
        }
        // At most one undersized part (the unavoidable tail).
        let undersized = parts.iter().filter(|p| **p < min_tu).count();
        prop_assert!(undersized <= 1, "{undersized} undersized parts");
    }

    #[test]
    fn channel_ops_conserve_funds(ops in prop::collection::vec((0u8..3, 0u64..5_000), 1..200)) {
        let mut g = Graph::new(2);
        let ch = g.add_edge(NodeId::new(0), NodeId::new(1));
        let mut funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));
        let total = funds.grand_total();
        for (op, amt) in ops {
            let amt = Amount::from_millitokens(amt);
            let side = NodeId::new((amt.millitokens() % 2) as u32);
            match op {
                0 => { let _ = funds.lock(ch, side, amt); }
                1 => { let locked = funds.locked(ch, side); let _ = funds.settle(ch, side, amt.min(locked)); }
                _ => { let locked = funds.locked(ch, side); let _ = funds.refund(ch, side, amt.min(locked)); }
            }
            prop_assert!(funds.verify_conservation());
            prop_assert_eq!(funds.grand_total(), total);
        }
    }

    #[test]
    fn shamir_roundtrip(secret in 0u64..u64::MAX, threshold in 1usize..6, extra in 0usize..4, seed in 0u64..u64::MAX) {
        let n = threshold + extra;
        let shares = shamir::split(Fp::new(secret), threshold, n, seed);
        let got = shamir::reconstruct(&shares[..threshold]).unwrap();
        prop_assert_eq!(got, Fp::new(secret));
    }

    #[test]
    fn edw_paths_are_disjoint_and_valid(seed in 0u64..1_000, n in 4usize..20, k in 1usize..6) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = pcn_graph::watts_strogatz(n, 2, 0.3, &mut rng);
        let paths = edge_disjoint_widest_paths(
            &g,
            NodeId::new(0),
            NodeId::from_index(n - 1),
            k,
            |e| Some(1.0 + (e.id.index() % 13) as f64),
        );
        prop_assert!(paths.len() <= k);
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            prop_assert!(p.validate(&g).is_ok());
            for c in p.channels() {
                prop_assert!(seen.insert(*c), "channel reused");
            }
        }
    }

    /// The CSR [`Graph`] and the `Vec<Vec>` [`ReferenceGraph`] stay
    /// bit-identical — neighbour iteration order, degrees, and all six
    /// search families — under arbitrary interleavings of channel opens,
    /// closes, reopens, and explicit CSR compactions. This is the
    /// determinism contract of the adjacency layout swap: tombstone
    /// flagging must behave exactly like `retain`, the delta overlay
    /// exactly like `push`, and compaction must be invisible.
    #[test]
    fn csr_graph_matches_reference_under_churn(
        n in 3usize..16,
        edges in prop::collection::vec((0u32..16, 0u32..16), 1..40),
        ops in prop::collection::vec((0u8..4, 0u32..64), 0..60),
    ) {
        use pcn_graph::{
            bfs_hops, edge_disjoint_shortest_paths, k_shortest_paths, max_flow,
            shortest_path, widest_path, ReferenceGraph, Topology,
        };
        use pcn_types::ChannelId;
        let mut g = Graph::new(n);
        let mut r = ReferenceGraph::new(n);
        for (a, b) in edges {
            let (a, b) = (a as usize % n, b as usize % n);
            if a != b {
                let (a, b) = (NodeId::from_index(a), NodeId::from_index(b));
                prop_assert_eq!(g.add_edge(a, b), r.add_edge(a, b));
            }
        }
        for (op, x) in ops {
            match op {
                0 => {
                    // Close a (possibly already closed / unknown) channel.
                    let id = ChannelId::new(x % (g.edge_count().max(1) as u32 + 2));
                    let (gr, rr) = (g.close_channel(id), r.close_channel(id));
                    prop_assert_eq!(gr.is_ok(), rr.is_ok());
                }
                1 => {
                    let id = ChannelId::new(x % (g.edge_count().max(1) as u32 + 2));
                    let (gr, rr) = (g.reopen_channel(id), r.reopen_channel(id));
                    prop_assert_eq!(gr.is_ok(), rr.is_ok());
                }
                2 => {
                    let (a, b) = ((x as usize) % n, (x as usize / n) % n);
                    if a != b {
                        let (a, b) = (NodeId::from_index(a), NodeId::from_index(b));
                        prop_assert_eq!(g.add_edge(a, b), r.add_edge(a, b));
                    }
                }
                _ => g.compact(), // reference is always "compact"
            }
        }
        // Adjacency: same degrees, same neighbour order, entry for entry.
        for v in 0..n {
            let v = NodeId::from_index(v);
            prop_assert_eq!(g.degree(v), r.degree(v));
            let ge: Vec<_> = Topology::out_edges(&g, v).collect();
            let re: Vec<_> = r.out_edges(v).collect();
            prop_assert_eq!(ge, re, "iteration order at {}", v);
        }
        // All six search families, deterministic closures off the edge id.
        let cost = |e: pcn_graph::EdgeRef| Some(1.0 + (e.id.index() % 7) as f64);
        let width = |e: pcn_graph::EdgeRef| Some(1.0 + (e.id.index() % 5) as f64);
        let (s, t) = (NodeId::new(0), NodeId::from_index(n - 1));
        prop_assert_eq!(bfs_hops(&g, s), bfs_hops(&r, s));
        prop_assert_eq!(shortest_path(&g, s, t, cost), shortest_path(&r, s, t, cost));
        prop_assert_eq!(widest_path(&g, s, t, width), widest_path(&r, s, t, width));
        prop_assert_eq!(
            k_shortest_paths(&g, s, t, 3, cost),
            k_shortest_paths(&r, s, t, 3, cost)
        );
        prop_assert_eq!(
            edge_disjoint_shortest_paths(&g, s, t, 2, cost),
            edge_disjoint_shortest_paths(&r, s, t, 2, cost)
        );
        prop_assert_eq!(
            edge_disjoint_widest_paths(&g, s, t, 2, width),
            edge_disjoint_widest_paths(&r, s, t, 2, width)
        );
        let cap = |e: pcn_graph::EdgeRef| Some(1 + (e.id.index() as u64 % 5));
        let (gf, rf) = (max_flow(&g, s, t, cap), max_flow(&r, s, t, cap));
        prop_assert_eq!(gf.value, rf.value);
        prop_assert_eq!(gf.paths.len(), rf.paths.len());
    }

    /// The goal-directed searches (bidirectional Dijkstra and the ALT
    /// landmark A*) stay bit-identical to the plain search — cost, node
    /// sequence and channel sequence — under arbitrary interleavings of
    /// channel opens, closes, reopens and explicit CSR compactions, with
    /// one long-lived workspace whose landmark table rebuilds across the
    /// topology-epoch crossings. The `Vec<Vec>` [`ReferenceGraph`] rides
    /// along as an independent distance oracle.
    #[test]
    fn accelerated_search_matches_reference(
        n in 3usize..16,
        edges in prop::collection::vec((0u32..16, 0u32..16), 1..40),
        ops in prop::collection::vec((0u8..4, 0u32..64), 0..60),
        pairs in prop::collection::vec((0u32..16, 0u32..16), 1..8),
    ) {
        use pcn_graph::{
            shortest_path, shortest_path_accel_in, shortest_path_bidir_in, AccelBounds,
            ReferenceGraph, SearchWorkspace,
        };
        use pcn_types::ChannelId;
        let mut g = Graph::new(n);
        let mut r = ReferenceGraph::new(n);
        let mut ws = SearchWorkspace::new();
        // Unit-or-larger costs: the regime the routing layer prices its
        // accelerable searches in, and what keeps the ALT bound admissible.
        let cost = |e: pcn_graph::EdgeRef| Some(1.0 + (e.id.index() % 7) as f64);
        for (a, b) in edges {
            let (a, b) = (a as usize % n, b as usize % n);
            if a != b {
                let (a, b) = (NodeId::from_index(a), NodeId::from_index(b));
                prop_assert_eq!(g.add_edge(a, b), r.add_edge(a, b));
            }
        }
        // Interleave churn with query rounds so the same workspace (and
        // the same landmark table) crosses several epoch rebuilds.
        for chunk in std::iter::once(&[][..]).chain(ops.chunks(10)) {
            for &(op, x) in chunk {
                match op {
                    0 => {
                        let id = ChannelId::new(x % (g.edge_count().max(1) as u32 + 2));
                        let (gr, rr) = (g.close_channel(id), r.close_channel(id));
                        prop_assert_eq!(gr.is_ok(), rr.is_ok());
                    }
                    1 => {
                        let id = ChannelId::new(x % (g.edge_count().max(1) as u32 + 2));
                        let (gr, rr) = (g.reopen_channel(id), r.reopen_channel(id));
                        prop_assert_eq!(gr.is_ok(), rr.is_ok());
                    }
                    2 => {
                        let (a, b) = ((x as usize) % n, (x as usize / n) % n);
                        if a != b {
                            let (a, b) = (NodeId::from_index(a), NodeId::from_index(b));
                            prop_assert_eq!(g.add_edge(a, b), r.add_edge(a, b));
                        }
                    }
                    _ => g.compact(), // reference is always "compact"
                }
            }
            ws.prepare_landmarks(&g);
            for &(ps, pt) in &pairs {
                let s = NodeId::from_index(ps as usize % n);
                let t = NodeId::from_index(pt as usize % n);
                let oracle = shortest_path(&r, s, t, cost);
                let plain = g.shortest_path_in(&mut ws, s, t, cost);
                let bidir = shortest_path_bidir_in(&g, &mut ws, s, t, cost);
                let accel = shortest_path_accel_in(&g, &mut ws, s, t, cost, AccelBounds::Full);
                let topo =
                    shortest_path_accel_in(&g, &mut ws, s, t, cost, AccelBounds::TopologyOnly);
                prop_assert_eq!(&plain, &oracle, "plain search diverged from the oracle");
                prop_assert_eq!(&bidir, &plain, "bidirectional search diverged");
                prop_assert_eq!(&accel, &plain, "ALT-accelerated search diverged");
                prop_assert_eq!(&topo, &plain, "topology-only accelerated search diverged");
            }
        }
    }

    #[test]
    fn lemma1_no_single_client_improvement(seed in 0u64..500) {
        // Moving any single client off its Lemma-1 hub cannot reduce C_B.
        let mut state = seed.wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 997) as f64 / 100.0
        };
        let m = 4;
        let n = 4;
        let zeta: Vec<Vec<f64>> = (0..m).map(|_| (0..n).map(|_| next()).collect()).collect();
        let mut delta = vec![vec![0.0; n]; n];
        let mut eps = vec![vec![0.0; n]; n];
        for a in 0..n {
            for b in (a + 1)..n {
                let d = next();
                let e = next();
                delta[a][b] = d;
                delta[b][a] = d;
                eps[a][b] = e;
                eps[b][a] = e;
            }
        }
        let inst = PlacementInstance::from_matrices(
            (10..10 + m as u32).map(NodeId::new).collect(),
            (0..n as u32).map(NodeId::new).collect(),
            zeta, delta, eps, 0.3,
        ).unwrap();
        let placed = vec![true; n];
        let asg = optimal_assignment(&inst, &placed).unwrap();
        let best = balance_cost_for(&inst, &placed);
        for client in 0..m {
            for hub in 0..n {
                if hub == asg[client] { continue; }
                let mut alt = asg.clone();
                alt[client] = hub;
                let cost = inst.balance_cost(&placed, &alt);
                prop_assert!(cost >= best - 1e-9,
                    "client {client} → hub {hub} improved: {cost} < {best}");
            }
        }
    }
}

// ---- WaitQueue scheduling properties (Table II disciplines) ---------------

use pcn_routing::scheduler::{Discipline, WaitQueue};
use pcn_types::{SimTime, TuId};

/// Reference implementation of the discipline selection rule: the index
/// of the entry `pop_eligible` must serve next among `(seq, amount,
/// deadline)` mirrors restricted to `amount ≤ available`.
fn reference_pick(
    entries: &[(u64, Amount, SimTime)],
    discipline: Discipline,
    available: Amount,
) -> Option<usize> {
    entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.1 <= available)
        .min_by(|(_, a), (_, b)| match discipline {
            Discipline::Fifo => a.0.cmp(&b.0),
            Discipline::Lifo => b.0.cmp(&a.0),
            Discipline::Spf => a.1.cmp(&b.1).then(a.0.cmp(&b.0)),
            Discipline::Edf => a.2.cmp(&b.2).then(a.0.cmp(&b.0)),
        })
        .map(|(i, _)| i)
}

proptest! {
    #[test]
    fn wait_queue_accounting_survives_all_ops(
        ops in prop::collection::vec((0u8..6, 1u64..40, 0u64..800, 0u64..800), 1..120),
        disc_i in 0usize..4,
    ) {
        // Mirror the queue with a (tu, amount) multiset; queued_value and
        // len must track it through push/pop_eligible/remove/drain_expired.
        let discipline = Discipline::ALL[disc_i];
        let capacity = Amount::from_tokens(300);
        let mut q = WaitQueue::new(discipline, capacity);
        let mut mirror: Vec<(TuId, Amount)> = Vec::new();
        let mut next_tu = 0u64;
        for (op, amt, t1, t2) in ops {
            let amount = Amount::from_tokens(amt);
            match op {
                // Bias towards pushes so the queue actually fills.
                0..=2 => {
                    let tu = TuId::new(next_tu);
                    next_tu += 1;
                    let accepted = q.push(
                        tu,
                        amount,
                        SimTime::from_micros(t1),
                        SimTime::from_micros(t2.min(t1)),
                    );
                    prop_assert_eq!(
                        accepted,
                        mirror.iter().map(|e| e.1).sum::<Amount>() + amount <= capacity,
                        "push acceptance must be exactly the capacity bound"
                    );
                    if accepted {
                        mirror.push((tu, amount));
                    }
                }
                3 => {
                    let available = Amount::from_tokens(amt);
                    if let Some(entry) = q.pop_eligible(available) {
                        prop_assert!(entry.amount <= available, "ineligible entry served");
                        let pos = mirror.iter().position(|e| e.0 == entry.tu);
                        prop_assert!(pos.is_some(), "served a TU the mirror never queued");
                        mirror.remove(pos.unwrap());
                    }
                }
                4 => {
                    // Remove a (maybe present) TU.
                    let victim = TuId::new(t1 % next_tu.max(1));
                    let removed = q.remove(victim);
                    let pos = mirror.iter().position(|e| e.0 == victim);
                    prop_assert_eq!(removed.is_some(), pos.is_some());
                    if let Some(pos) = pos {
                        mirror.remove(pos);
                    }
                }
                _ => {
                    let now = SimTime::from_micros(t1);
                    for e in q.drain_expired(now) {
                        let pos = mirror.iter().position(|m| m.0 == e.tu);
                        prop_assert!(pos.is_some(), "expired a TU the mirror never queued");
                        mirror.remove(pos.unwrap());
                    }
                }
            }
            prop_assert_eq!(q.len(), mirror.len());
            prop_assert_eq!(
                q.queued_value(),
                mirror.iter().map(|e| e.1).sum::<Amount>(),
                "queued_value drifted from the live entries"
            );
        }
    }

    #[test]
    fn wait_queue_pop_matches_reference_discipline(
        batch in prop::collection::vec((1u64..30, 0u64..500, 0u64..500), 1..40),
        pops in prop::collection::vec(0u64..35, 1..60),
        disc_i in 0usize..4,
    ) {
        // Every pop under every discipline must serve exactly the entry
        // the reference rule picks (ties broken by arrival sequence).
        let discipline = Discipline::ALL[disc_i];
        let mut q = WaitQueue::new(discipline, Amount::from_tokens(u64::MAX / 2_000));
        let mut mirror: Vec<(u64, Amount, SimTime)> = Vec::new();
        let mut tu_of_seq: Vec<TuId> = Vec::new();
        for (seq, (amt, deadline, enq)) in batch.into_iter().enumerate() {
            let tu = TuId::new(seq as u64);
            let amount = Amount::from_tokens(amt);
            let deadline = SimTime::from_micros(deadline);
            prop_assert!(q.push(tu, amount, deadline, SimTime::from_micros(enq)));
            mirror.push((seq as u64, amount, deadline));
            tu_of_seq.push(tu);
        }
        for avail in pops {
            let available = Amount::from_tokens(avail);
            let expect = reference_pick(&mirror, discipline, available);
            let got = q.pop_eligible(available);
            match (expect, got) {
                (None, None) => {}
                (Some(i), Some(entry)) => {
                    prop_assert_eq!(entry.tu, tu_of_seq[mirror[i].0 as usize]);
                    prop_assert_eq!(entry.amount, mirror[i].1);
                    mirror.remove(i);
                }
                (expect, got) => {
                    prop_assert!(
                        false,
                        "{discipline:?}: reference {expect:?} vs queue {got:?}"
                    );
                }
            }
        }
    }
}
