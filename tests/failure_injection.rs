//! Threat-model integration tests: dropped/delayed traffic must degrade
//! gracefully — failed transactions are withdrawn, funds stay safe, and
//! honest traffic keeps flowing.

use pcn_harness::run_spec;
use pcn_types::{Amount, NodeId};
use pcn_workload::ScenarioBuilder;
use splicer_core::workflow::{Demand, PaymentWorkflow};

#[test]
fn dropped_tus_never_complete_a_payment() {
    let mut wf = PaymentWorkflow::new(5, 3, 7);
    let demand = Demand {
        sender: NodeId::new(1),
        recipient: NodeId::new(2),
        value: Amount::from_tokens(12),
    };
    // Drop every TU pattern: any single drop blocks θ.
    let honest = wf.execute(demand, |_| false).unwrap();
    let k = honest.tuids.len();
    assert!(honest.theta);
    for victim in 0..k {
        let t = wf.execute(demand, |idx| idx == victim).unwrap();
        assert!(!t.theta, "drop of TU {victim} must block completion");
    }
}

#[test]
fn overload_fails_transactions_but_not_invariants() {
    // Starve the network: 10× the arrival rate on a tiny world, expressed
    // through the scenario DSL's failure-injection knobs.
    let spec = ScenarioBuilder::tiny()
        .arrivals_per_sec(60.0)
        .mean_tx_tokens(30.0)
        .build();
    let outcome = run_spec(&spec);
    let stats = &outcome.report.stats;
    assert!(stats.failed > 0, "overload must fail transactions");
    assert!(stats.is_consistent());
    // Failures are withdrawn: completed value never exceeds generated.
    assert!(stats.completed_value <= stats.generated_value);
}

#[test]
fn tampered_envelope_is_rejected() {
    use pcn_crypto::{envelope::Envelope, keys::KeyPair, rng64::SplitMix64};
    let kp = KeyPair::from_seed(11);
    let mut rng = SplitMix64::new(12);
    let sealed = Envelope::seal(&kp.public, b"D_tid", &mut rng);
    // Round trip intact…
    assert!(sealed.open(&kp.secret).is_ok());
    // …but any other key fails (replay to the wrong hub).
    let other = KeyPair::from_seed(13);
    assert!(sealed.open(&other.secret).is_err());
}

#[test]
fn isolated_recipient_is_unroutable_not_fatal() {
    // A client with no channel cannot receive; those payments fail as
    // unroutable while the rest of the system keeps working.
    use pcn_routing::channel::NetworkFunds;
    use pcn_routing::engine::{payments_from_tuples, Engine, EngineConfig};
    use pcn_routing::SchemeConfig;
    use pcn_sim::SimRng;
    let mut g = pcn_graph::Graph::new(4);
    g.add_edge(NodeId::new(0), NodeId::new(1));
    g.add_edge(NodeId::new(1), NodeId::new(2)); // node 3 isolated
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(20));
    let payments = payments_from_tuples(
        &[(0, 0, 3, 2), (10, 0, 2, 2)],
        pcn_types::SimDuration::from_secs(3),
    );
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(2),
    )
    .run(payments);
    assert_eq!(stats.unroutable, 1);
    assert_eq!(stats.completed, 1);
}
