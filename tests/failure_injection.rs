//! Threat-model integration tests: dropped/delayed traffic must degrade
//! gracefully — failed transactions are withdrawn, funds stay safe, and
//! honest traffic keeps flowing.

use pcn_harness::run_spec;
use pcn_types::{Amount, NodeId};
use pcn_workload::ScenarioBuilder;
use splicer_core::workflow::{Demand, PaymentWorkflow};

#[test]
fn dropped_tus_never_complete_a_payment() {
    let mut wf = PaymentWorkflow::new(5, 3, 7);
    let demand = Demand {
        sender: NodeId::new(1),
        recipient: NodeId::new(2),
        value: Amount::from_tokens(12),
    };
    // Drop every TU pattern: any single drop blocks θ.
    let honest = wf.execute(demand, |_| false).unwrap();
    let k = honest.tuids.len();
    assert!(honest.theta);
    for victim in 0..k {
        let t = wf.execute(demand, |idx| idx == victim).unwrap();
        assert!(!t.theta, "drop of TU {victim} must block completion");
    }
}

#[test]
fn overload_fails_transactions_but_not_invariants() {
    // Starve the network: 10× the arrival rate on a tiny world, expressed
    // through the scenario DSL's failure-injection knobs.
    let spec = ScenarioBuilder::tiny()
        .arrivals_per_sec(60.0)
        .mean_tx_tokens(30.0)
        .build();
    let outcome = run_spec(&spec);
    let stats = &outcome.report.stats;
    assert!(stats.failed > 0, "overload must fail transactions");
    assert!(stats.is_consistent());
    // Failures are withdrawn: completed value never exceeds generated.
    assert!(stats.completed_value <= stats.generated_value);
}

#[test]
fn fault_plan_drives_the_payment_workflow() {
    // Satellite of the fault layer: the same `FaultPlan` the routing
    // engine consumes plugs into `PaymentWorkflow::execute` through the
    // `TuDropFilter` trait — one source of truth for drop decisions.
    use pcn_routing::FaultPlan;
    let demand = Demand {
        sender: NodeId::new(1),
        recipient: NodeId::new(2),
        value: Amount::from_tokens(12),
    };
    let mut wf = PaymentWorkflow::new(5, 3, 7);
    // An empty plan drops nothing: θ completes.
    let t = wf.execute(demand, &FaultPlan::default()).unwrap();
    assert!(t.theta, "the empty plan must not drop TUs");
    // A certain-drop plan kills every TU: θ stays false, no panic, and
    // the transcript still accounts for every TU (withdrawn, not lost).
    let lossy = FaultPlan {
        drop_prob: 1.0,
        ..FaultPlan::default()
    };
    let t = wf.execute(demand, &lossy).unwrap();
    assert!(!t.theta, "p=1 drops must block completion");
    assert_eq!(t.tuids.len(), 3);
    // Closures keep working unchanged through the blanket impl.
    let t = wf.execute(demand, |idx: usize| idx == 0).unwrap();
    assert!(!t.theta);
}

#[test]
fn griefing_degrades_gracefully_across_all_schemes() {
    // 10% of the clients grief: their TUs lock hops and hold them past
    // the 3 s TU timeout. For every scheme the run must degrade
    // gracefully — value conserved, stats consistent, griefed locks
    // visible, and honest traffic strictly better off than the
    // griefers' own (never-completing) payments.
    for scheme in [
        pcn_workload::SchemeChoice::Splicer,
        pcn_workload::SchemeChoice::Spider,
        pcn_workload::SchemeChoice::Flash,
        pcn_workload::SchemeChoice::Landmark,
        pcn_workload::SchemeChoice::A2L,
        pcn_workload::SchemeChoice::ShortestPath,
    ] {
        let spec = ScenarioBuilder::tiny()
            .griefers(0.1, 5_000)
            .expect_value_conserved()
            .scheme(scheme)
            .seed(13)
            .build();
        let outcome = run_spec(&spec);
        let s = &outcome.report.stats;
        assert!(
            outcome.passed(),
            "{}: {:?}",
            outcome.report.scheme,
            outcome.violations
        );
        assert!(
            s.is_consistent(),
            "{} stats inconsistent",
            outcome.report.scheme
        );
        assert!(
            s.griefed_locks > 0 && s.faults_injected > 0,
            "{}: griefers must show up in the stats",
            outcome.report.scheme
        );
        assert!(
            s.honest_generated < s.generated,
            "{}: griefer payments must be excluded from the honest count",
            outcome.report.scheme
        );
        assert!(
            s.honest_tsr() >= s.tsr(),
            "{}: griefer payments never complete, so honest TSR ≥ overall",
            outcome.report.scheme
        );
    }
}

#[test]
fn circular_demand_wedges_flat_baselines_but_not_splicer() {
    // The committed head-to-head scenario (see
    // `examples/adversarial_deadlock.rs`): a 12-client ring circulating
    // 1-token payments at 60/s over thin channels. The flat baselines
    // grind directional balances below one Min-TU until a stalled
    // drained-direction cycle forms — the detector must fire for
    // ShortestPath and Landmark. Splicer's hub topology cancels the
    // circulation hop-locally and must pass `expect_no_deadlock()`.
    // Every scheme must still degrade gracefully: value conserved and
    // honest traffic completing.
    let attacked = |scheme| {
        let builder = ScenarioBuilder::tiny()
            .channel_scale(0.2)
            .arrivals_per_sec(3.0)
            .duration_secs(15)
            .adversary(|a| a.circular_demand(12, 60.0).ring_value(1.0))
            .expect_value_conserved()
            .seed(3);
        let builder = if scheme == pcn_workload::SchemeChoice::Splicer {
            builder.expect_no_deadlock()
        } else {
            builder
        };
        builder.scheme(scheme).build()
    };
    let splicer = run_spec(&attacked(pcn_workload::SchemeChoice::Splicer));
    assert!(splicer.passed(), "Splicer: {:?}", splicer.violations);
    assert_eq!(
        splicer.report.stats.deadlocks_detected, 0,
        "Splicer must stay deadlock-free under the ring"
    );
    assert!(
        splicer.report.stats.honest_tsr() > 0.5,
        "Splicer honest traffic must keep completing, got {:.3}",
        splicer.report.stats.honest_tsr()
    );
    let mut wedged = 0u32;
    for scheme in [
        pcn_workload::SchemeChoice::ShortestPath,
        pcn_workload::SchemeChoice::Landmark,
    ] {
        let outcome = run_spec(&attacked(scheme));
        let s = &outcome.report.stats;
        assert!(
            outcome.passed(),
            "{}: {:?}",
            outcome.report.scheme,
            outcome.violations
        );
        assert!(
            s.is_consistent(),
            "{} stats inconsistent",
            outcome.report.scheme
        );
        assert!(
            s.honest_tsr() > 0.1,
            "{}: even wedged, honest traffic must trickle (graceful \
             degradation), got {:.3}",
            outcome.report.scheme,
            s.honest_tsr()
        );
        wedged += u32::from(s.deadlocks_detected > 0);
    }
    assert!(wedged > 0, "the ring must wedge at least one flat baseline");
}

#[test]
fn tampered_envelope_is_rejected() {
    use pcn_crypto::{envelope::Envelope, keys::KeyPair, rng64::SplitMix64};
    let kp = KeyPair::from_seed(11);
    let mut rng = SplitMix64::new(12);
    let sealed = Envelope::seal(&kp.public, b"D_tid", &mut rng);
    // Round trip intact…
    assert!(sealed.open(&kp.secret).is_ok());
    // …but any other key fails (replay to the wrong hub).
    let other = KeyPair::from_seed(13);
    assert!(sealed.open(&other.secret).is_err());
}

#[test]
fn isolated_recipient_is_unroutable_not_fatal() {
    // A client with no channel cannot receive; those payments fail as
    // unroutable while the rest of the system keeps working.
    use pcn_routing::channel::NetworkFunds;
    use pcn_routing::engine::{payments_from_tuples, Engine, EngineConfig};
    use pcn_routing::SchemeConfig;
    use pcn_sim::SimRng;
    let mut g = pcn_graph::Graph::new(4);
    g.add_edge(NodeId::new(0), NodeId::new(1));
    g.add_edge(NodeId::new(1), NodeId::new(2)); // node 3 isolated
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(20));
    let payments = payments_from_tuples(
        &[(0, 0, 3, 2), (10, 0, 2, 2)],
        pcn_types::SimDuration::from_secs(3),
    );
    let stats = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(2),
    )
    .run(payments);
    assert_eq!(stats.unroutable, 1);
    assert_eq!(stats.completed, 1);
}
