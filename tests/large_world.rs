//! Large-world smoke test: a 100k-node, ~800k-channel hotspot world must
//! build and route end-to-end on the CSR graph core.
//!
//! `#[ignore]`d: this is a release-mode scale gate, not a unit test. CI
//! runs it explicitly via `cargo test --release -- --ignored large_world`.
//! The routing gate drives the [`Engine`] directly on a constructed
//! 2k-payment hotspot trace (the graph-scale question is the engine's
//! event loop and searches over the CSR adjacency, not harness
//! scaffolding, which would dominate the wall clock at this size).

use pcn_graph::{watts_strogatz, Graph};
use pcn_routing::channel::NetworkFunds;
use pcn_routing::engine::{Engine, EngineConfig, ShardedEngine};
use pcn_routing::scheme::{ComputeModel, SchemeConfig};
use pcn_routing::tu::Payment;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration, SimTime, TxId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 100_000;
const DEGREE: usize = 16;
const PAYMENTS: usize = 2_000;
const HOT_PAIRS: usize = 64;
const DURATION_SECS: u64 = 20;

/// WS(100k, 16) — ~800k channels.
fn large_graph() -> Graph {
    watts_strogatz(NODES, DEGREE, 0.3, &mut StdRng::seed_from_u64(7))
}

/// 2k payments over 20 s between 64 hotspot pairs.
fn hotspot_payments(rng: &mut StdRng) -> Vec<Payment> {
    let pairs: Vec<(NodeId, NodeId)> = (0..HOT_PAIRS)
        .map(|_| {
            let a = rng.random_range(0..NODES);
            let mut b = rng.random_range(0..NODES);
            while b == a {
                b = rng.random_range(0..NODES);
            }
            (NodeId::from_index(a), NodeId::from_index(b))
        })
        .collect();
    let gap = SimDuration::from_micros(DURATION_SECS * 1_000_000 / PAYMENTS as u64);
    let timeout = SimDuration::from_secs(5);
    (0..PAYMENTS)
        .map(|i| {
            let (source, dest) = pairs[rng.random_range(0..HOT_PAIRS)];
            let created = SimTime::ZERO + gap.saturating_mul(i as u64);
            Payment {
                id: TxId::new(i as u64),
                source,
                dest,
                value: Amount::from_tokens(4),
                created,
                deadline: created + timeout,
            }
        })
        .collect()
}

#[test]
#[ignore = "release-mode scale gate; run with --release -- --ignored"]
fn large_world_builds_within_memory_budget() {
    if cfg!(debug_assertions) {
        eprintln!("skipping 100k-node build in a debug binary");
        return;
    }
    let g = large_graph();
    assert_eq!(g.node_count(), NODES);
    assert!(
        g.edge_count() >= 790_000,
        "WS(100k, 16) should land near 800k channels, got {}",
        g.edge_count()
    );
    let stats = g.adjacency_stats();
    assert_eq!(
        stats.entry_bytes, 8,
        "CSR adjacency entries must stay 8 bytes"
    );
    // ≤ 16 bytes per neighbour entry, counting offsets against the total.
    let entries = stats.csr_entries + stats.delta_entries;
    let bytes = stats.entry_total_bytes() + stats.offset_bytes;
    assert!(
        bytes <= 16 * entries,
        "adjacency spends {bytes} bytes over {entries} entries"
    );
    // Fresh builds are pure CSR: nothing in the overlay, no tombstones.
    assert_eq!(stats.delta_entries, 0);
    assert_eq!(stats.flagged_entries, 0);
}

#[test]
#[ignore = "release-mode scale gate; run with --release -- --ignored"]
fn large_world_routes_end_to_end() {
    if cfg!(debug_assertions) {
        eprintln!("skipping 100k-node engine run in a debug binary");
        return;
    }
    let g = large_graph();
    // Each hotspot pair pushes ~125 tokens through one capacity-only
    // path over the run; channels need headroom for that cumulative
    // one-directional drain.
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(500));
    let payments = hotspot_payments(&mut StdRng::seed_from_u64(11));
    // Zero the simulated compute model: at 800k channels the paper's
    // client-compute cost (30 µs/edge, §III-C — the wall that motivates
    // hubs) exceeds any deadline; this gate checks that routing itself
    // works end to end at scale.
    let scheme = SchemeConfig {
        compute: ComputeModel {
            client_secs_per_edge: 0.0,
            hub_secs_per_edge: 0.0,
            crypto_overhead: SimDuration::ZERO,
        },
        ..SchemeConfig::shortest_path()
    };
    let stats =
        Engine::new(g, funds, scheme, EngineConfig::default(), SimRng::seed(1)).run(payments);
    assert_eq!(stats.generated, PAYMENTS as u64);
    assert!(stats.is_consistent(), "bookkeeping drifted: {stats}");
    assert!(
        stats.completed_value <= stats.generated_value,
        "value conservation: completed {} exceeds generated {}",
        stats.completed_value,
        stats.generated_value
    );
    assert!(
        stats.tsr() > 0.5,
        "a static 100k world should complete most payments, got {stats}"
    );
}

#[test]
#[ignore = "release-mode scale gate; run with --release -- --ignored"]
fn large_world_routes_sharded() {
    if cfg!(debug_assertions) {
        eprintln!("skipping 100k-node sharded run in a debug binary");
        return;
    }
    // The 100k-node world through four partitioned event loops: the
    // sharded engine must hold the same invariants as the plain gate
    // above AND stay semantically bit-identical to the single engine at
    // this scale (a flat scheme, so ownership is the hash partition).
    let g = large_graph();
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(500));
    let payments = hotspot_payments(&mut StdRng::seed_from_u64(11));
    let scheme = SchemeConfig {
        compute: ComputeModel {
            client_secs_per_edge: 0.0,
            hub_secs_per_edge: 0.0,
            crypto_overhead: SimDuration::ZERO,
        },
        ..SchemeConfig::shortest_path()
    };
    let plain = Engine::new(
        g.clone(),
        funds.clone(),
        scheme.clone(),
        EngineConfig::default(),
        SimRng::seed(1),
    )
    .run(payments.clone());
    let stats = ShardedEngine::new(
        g,
        funds,
        scheme,
        EngineConfig::default(),
        SimRng::seed(1),
        4,
    )
    .run(payments);
    assert_eq!(stats.generated, PAYMENTS as u64);
    assert!(stats.is_consistent(), "bookkeeping drifted: {stats}");
    assert!(
        stats.completed_value <= stats.generated_value,
        "value conservation: completed {} exceeds generated {}",
        stats.completed_value,
        stats.generated_value
    );
    assert!(
        stats.tsr() > 0.5,
        "a sharded static 100k world should complete most payments, got {stats}"
    );
    assert_eq!(
        plain.without_cache_counters(),
        stats.without_cache_counters(),
        "K=4 sharded run diverged semantically from the plain engine at 100k nodes"
    );
}
