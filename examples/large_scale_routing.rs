//! Large-scale scalability demonstration: the five schemes on a bigger
//! network, showing where source routing and single-hub designs break.
//!
//! Run with: `cargo run --release --example large_scale_routing`
//! (Uses a 600-node network so the example finishes in seconds; pass
//! `--full` for the paper's 3000 nodes.)

use pcn_workload::{Scenario, ScenarioParams};
use splicer_core::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let mut params = ScenarioParams::large();
    if !full {
        params.nodes = 600;
        params.candidate_count = 20;
        params.arrivals_per_sec = 40.0;
        params.duration = pcn_types::SimDuration::from_secs(20);
    }
    let scenario = Scenario::build(params);
    println!(
        "network: {} nodes / {} channels; trace: {} payments",
        scenario.flat.graph.node_count(),
        scenario.flat.graph.edge_count(),
        scenario.payments.len()
    );

    let builder = SystemBuilder::new(scenario);
    println!(
        "\n{:<12} {:>6} {:>11} {:>9} {:>12}",
        "scheme", "TSR", "throughput", "latency", "overhead"
    );
    let mut splicer_tsr = 0.0;
    let mut rest = Vec::new();
    for run in builder.build_all()? {
        let report = run.run();
        println!(
            "{:<12} {:>6.3} {:>11.3} {:>8.3}s {:>12}",
            report.scheme,
            report.stats.tsr(),
            report.stats.normalized_throughput(),
            report.stats.avg_latency_secs(),
            report.stats.overhead_msgs
        );
        if report.scheme == "Splicer" {
            splicer_tsr = report.stats.tsr();
        } else {
            rest.push(report.stats.tsr());
        }
    }
    let baseline_avg = rest.iter().sum::<f64>() / rest.len() as f64;
    println!(
        "\nSplicer TSR {:.3} vs baseline average {:.3} ({:+.1}%) — hub routing
keeps scaling where per-sender computation and single-hub crypto choke.",
        splicer_tsr,
        baseline_avg,
        100.0 * (splicer_tsr - baseline_avg) / baseline_avg
    );
    Ok(())
}
