//! Workload diversity: Zipf-skewed hotspot traffic.
//!
//! `ScenarioBuilder::hotspot(fraction, skew)` redirects a fraction of the
//! payment trace onto Zipf-skewed source/dest pairs — a flash-crowd
//! ("merchant rush") workload that concentrates load on a few popular
//! clients and their channels. This example sweeps the hotspot fraction
//! over the compared schemes and prints how success rate and deadlock
//! pressure respond, along with the engine path-cache counters (hotspot
//! traffic repeats endpoint pairs, so hit rates climb with the skew).
//!
//! Run with: `cargo run --release --example hotspot_traffic`

use pcn_harness::run_spec;
use pcn_workload::{ScenarioBuilder, SchemeChoice};

fn main() {
    println!("hotspot fraction sweep (tiny world, skew 1.5)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>10} {:>14}",
        "scheme", "hotspot", "tsr", "drained", "aborted", "cache h/m"
    );
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
    ] {
        for fraction in [0.0, 0.5, 1.0] {
            let spec = ScenarioBuilder::tiny()
                .hotspot(fraction, 1.5)
                .scheme(scheme)
                .seed(3)
                .build();
            let outcome = run_spec(&spec);
            let s = &outcome.report.stats;
            println!(
                "{:<12} {:>8.1} {:>8.3} {:>8} {:>10} {:>9}/{}",
                scheme.name(),
                fraction,
                s.tsr(),
                s.drained_directions_end,
                s.aborted_tus,
                s.path_cache.hits,
                s.path_cache.misses,
            );
        }
    }
}
