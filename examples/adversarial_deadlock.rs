//! The paper's deadlock claim, head to head under a circular-demand
//! attack: flat source-routing baselines wedge while Splicer's hub
//! topology absorbs the circulation.
//!
//! Twelve clients pay each other in a ring (A→B→…→L→A), sixty 1-token
//! payments per second — Fig. 1's one-directional circulation, scaled
//! up. On a flat topology every ring payment pushes value the *same
//! way* around the cycle, so the directional balances along the ring
//! paths grind monotonically below one Min-TU — once a cycle of dead
//! directions exists and no TU makes progress for a whole τ, the
//! stalled-cycle detector fires (`RunStats::deadlocks_detected`). On
//! Splicer's multi-star rewiring the same client both sends and
//! receives through its *one* hub channel, so the circulation cancels
//! hop-locally and the ring never wedges the topology.
//!
//! Graceful degradation is checked either way: value conservation
//! holds, honest (non-ring) traffic keeps completing, and every failed
//! TU is withdrawn — an attack degrades throughput, never safety.
//!
//! Run with: `cargo run --release --example adversarial_deadlock`

use pcn_harness::run_spec;
use pcn_workload::{ScenarioBuilder, SchemeChoice};

/// The attacked world: light honest background traffic plus a
/// 12-client ring circulating 1-token payments at 60/s, on thin
/// channels (0.2× the Lightning distribution) for 15 seconds.
fn attacked(scheme: SchemeChoice) -> pcn_workload::ScenarioSpec {
    let builder = ScenarioBuilder::tiny()
        .channel_scale(0.2)
        .arrivals_per_sec(3.0)
        .duration_secs(15)
        .adversary(|a| a.circular_demand(12, 60.0).ring_value(1.0))
        .expect_value_conserved()
        .seed(3);
    // The paper's claim: Splicer survives the exact world that wedges
    // the flat baselines.
    let builder = if scheme == SchemeChoice::Splicer {
        builder.expect_no_deadlock()
    } else {
        builder
    };
    builder.scheme(scheme).build()
}

fn main() {
    println!(
        "== circular-demand attack: 12-client ring, 1-token payments at 60/s, thin channels ==\n"
    );
    let mut splicer_clean = false;
    let mut flat_wedged = 0u32;
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::Flash,
        SchemeChoice::Landmark,
        SchemeChoice::A2L,
        SchemeChoice::ShortestPath,
    ] {
        let outcome = run_spec(&attacked(scheme));
        let s = &outcome.report.stats;
        println!(
            "{:>12}: honest TSR {:.3} (overall {:.3})  deadlocks detected {}  \
             drained dirs {}  conserved {}",
            outcome.report.scheme,
            s.honest_tsr(),
            s.tsr(),
            s.deadlocks_detected,
            s.drained_directions_end,
            if s.conservation_violations == 0 {
                "yes"
            } else {
                "NO"
            },
        );
        for v in &outcome.violations {
            println!("              violation: {v}");
        }
        assert!(
            outcome.passed(),
            "{} failed its expectations",
            outcome.report.scheme
        );
        assert!(
            s.is_consistent(),
            "{} stats inconsistent",
            outcome.report.scheme
        );
        if scheme == SchemeChoice::Splicer {
            splicer_clean = s.deadlocks_detected == 0;
        } else if s.deadlocks_detected > 0 {
            flat_wedged += 1;
        }
    }
    assert!(splicer_clean, "Splicer must stay deadlock-free");
    assert!(
        flat_wedged > 0,
        "the ring must wedge at least one flat baseline"
    );
    println!(
        "\n→ {flat_wedged} baseline(s) wedged (stalled drained-direction cycle); \
         Splicer's hub topology cancelled the circulation and stayed deadlock-free."
    );
}
