//! The §III-A encrypted payment workflow, end to end: KMG key issuance,
//! envelope-sealed demands, TU-level unlinkability, ACK aggregation, and
//! the threat model (dropped TUs abort the payment without fund loss).
//!
//! Run with: `cargo run --release --example encrypted_workflow`

use pcn_types::{Amount, NodeId};
use splicer_core::workflow::{Demand, PaymentWorkflow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A KMG of 5 smooth nodes, any 3 of which can reconstruct keys.
    let mut wf = PaymentWorkflow::new(5, 3, 2024);

    let demand = Demand {
        sender: NodeId::new(17),
        recipient: NodeId::new(42),
        value: Amount::from_tokens(11),
    };

    // Honest run: every TU is delivered and acknowledged.
    let t = wf.execute(demand, |_| false)?;
    println!(
        "payment {}: {} TUs, {} ciphertext bytes, θ_tid = {}",
        t.tid,
        t.tuids.len(),
        t.wire_bytes,
        t.theta
    );
    assert!(t.theta);

    // Adversarial run: the network drops the second TU (threat model —
    // an adversary "can arbitrarily drop, delay, and replay messages").
    let t = wf.execute(demand, |idx| idx == 1)?;
    println!(
        "payment {} with a dropped TU: θ_tid = {} (payment withdrawn, no loss)",
        t.tid, t.theta
    );
    assert!(!t.theta);

    println!(
        "\nKMG issued {} key pairs total — one per payment plus one per TU,
so intermediaries cannot link the TUs of one payment (unlinkability).",
        wf.keys_issued()
    );
    Ok(())
}
