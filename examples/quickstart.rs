//! Quickstart: build a small PCN world, run Splicer and the four
//! baselines on the same payment trace, and print the comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use pcn_workload::{Scenario, ScenarioParams};
use splicer_core::SystemBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 100-node small-world PCN with Lightning-like channel funds and a
    // 60-second Poisson payment trace (the paper's small-scale setting).
    let mut params = ScenarioParams::small();
    params.duration = pcn_types::SimDuration::from_secs(30);
    let scenario = Scenario::build(params);
    println!(
        "world: {} nodes, {} channels, {} payments, {} tokens total demand",
        scenario.flat.graph.node_count(),
        scenario.flat.graph.edge_count(),
        scenario.payments.len(),
        scenario.generated_value()
    );

    let builder = SystemBuilder::new(scenario);

    // The Splicer pipeline: multiwinner candidates → placement → rewiring
    // → deadlock-free rate-based routing.
    let splicer = builder.build_splicer()?;
    println!(
        "Splicer rewired topology: {} channels (multi-star)",
        splicer.topology().graph.edge_count()
    );

    println!(
        "\n{:<12} {:>6} {:>11} {:>9}",
        "scheme", "TSR", "throughput", "latency"
    );
    for run in builder.build_all()? {
        let report = run.run();
        println!(
            "{:<12} {:>6.3} {:>11.3} {:>8.3}s",
            report.scheme,
            report.stats.tsr(),
            report.stats.normalized_throughput(),
            report.stats.avg_latency_secs(),
        );
        if let Some(p) = &report.placement {
            println!(
                "             └─ {} hubs placed (ω={}, C_B={:.3})",
                p.hubs, p.omega, p.balance_cost
            );
        }
    }
    Ok(())
}
