//! Fig. 1 reenacted: a local deadlock under naive routing, and how
//! rate-based control avoids it.
//!
//! Three nodes A, C, B with channels A–C and C–B (10 tokens per side).
//! A pays B (via C) relentlessly while B pays A back more slowly: C's
//! C→B balance drains faster than it refills, and once it hits zero the
//! relay is deadlocked — payments between A and B fail even though both
//! have plenty of funds.
//!
//! Run with: `cargo run --release --example deadlock_demo`

use pcn_routing::channel::NetworkFunds;
use pcn_routing::engine::{payments_from_tuples, Engine, EngineConfig};
use pcn_routing::SchemeConfig;
use pcn_sim::SimRng;
use pcn_types::{Amount, NodeId, SimDuration};

fn main() {
    let a = NodeId::new(0);
    let b = NodeId::new(1);
    let c = NodeId::new(2);
    let mut g = pcn_graph::Graph::new(3);
    g.add_edge(a, c);
    let cb = g.add_edge(c, b);
    let funds = NetworkFunds::uniform(&g, Amount::from_tokens(10));

    // The Fig. 1 rates: A→B at 2 tokens/sec for 20 seconds, B→A at
    // 1 token/sec — net flow through C is strictly one-directional.
    let mut tuples = Vec::new();
    for i in 0..40u64 {
        tuples.push((i * 500, 0u32, 1u32, 1u64)); // A→B
    }
    for i in 0..20u64 {
        tuples.push((i * 1000 + 100, 1u32, 0u32, 1u64)); // B→A (slower)
    }
    tuples.sort();
    let payments = payments_from_tuples(&tuples, SimDuration::from_secs(3));

    println!("== naive shortest-path routing (no rate control) ==");
    let naive = Engine::new(
        g.clone(),
        funds.clone(),
        SchemeConfig::shortest_path(),
        EngineConfig::default(),
        SimRng::seed(1),
    );
    let stats = naive.run(payments.clone());
    println!("  {stats}");
    println!(
        "  → {} drained channel direction(s): the C→B side is empty; the
    relay C can no longer forward A's payments (Fig. 1c).",
        stats.drained_directions_end
    );

    println!("\n== Spider-style rate control on the same workload ==");
    let controlled = Engine::new(
        g,
        funds,
        SchemeConfig::spider(),
        EngineConfig::default(),
        SimRng::seed(1),
    );
    let stats2 = controlled.run(payments);
    println!("  {stats2}");
    println!(
        "  → imbalance prices throttle the excess A→B flow; the balanced
    circulation completes ({} vs {} payments).",
        stats2.completed, stats.completed
    );
    let _ = cb;
}
