//! Hub-placement deep dive: the ω tradeoff, solver agreement, and the
//! supermodular structure (the machinery behind Fig. 9).
//!
//! Run with: `cargo run --release --example placement_analysis`

use pcn_placement::supermodular::{
    count_supermodularity_violations, double_greedy_deterministic, double_greedy_randomized,
};
use pcn_placement::{exact::solve_exhaustive, milp_form, CostParams, PlacementInstance};
use pcn_sim::SimRng;
use pcn_types::NodeId;
use pcn_workload::{Scenario, ScenarioParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = Scenario::build(ScenarioParams::small());

    println!(
        "ω sweep on the 100-node network ({} candidates):",
        scenario.candidates.len()
    );
    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>10}",
        "ω", "hubs", "C_M", "C_S", "C_B"
    );
    for omega in [0.01, 0.02, 0.04, 0.08, 0.2, 0.5, 1.0] {
        let inst = PlacementInstance::from_graph(
            &scenario.flat.graph,
            scenario.clients.clone(),
            scenario.candidates.clone(),
            CostParams::paper(omega),
        );
        let plan = solve_exhaustive(&inst)?;
        println!(
            "{omega:>8} {:>6} {:>10.3} {:>10.3} {:>10.3}",
            plan.num_hubs(),
            plan.management_cost(),
            plan.synchronization_cost(),
            plan.balance_cost()
        );
    }

    // Solver agreement on a MILP-sized sub-instance.
    let g = pcn_graph::ring(12);
    let small = PlacementInstance::from_graph(
        &g,
        (4..12).map(NodeId::from_index).collect(),
        (0..4).map(NodeId::from_index).collect(),
        CostParams::paper(0.1),
    );
    let exact = solve_exhaustive(&small)?;
    let milp = milp_form::solve_milp(&small)?;
    println!(
        "\nsolver agreement (12-node ring): exhaustive C_B = {:.4}, MILP C_B = {:.4}",
        exact.balance_cost(),
        milp.balance_cost()
    );

    // Approximation quality + supermodularity of the uniform-δ case.
    let inst = PlacementInstance::from_graph(
        &scenario.flat.graph,
        scenario.clients.clone(),
        scenario.candidates.clone(),
        CostParams::paper(0.04),
    )
    .with_uniform_delta(0.02);
    let mut rng = SimRng::seed(9);
    let violations = count_supermodularity_violations(&inst, 400, &mut rng);
    println!("\nuniform-δ supermodularity violations over 400 sampled chains: {violations}");
    let opt = solve_exhaustive(&inst)?;
    let det = double_greedy_deterministic(&inst);
    let rnd = double_greedy_randomized(&inst, &mut rng);
    println!(
        "optimal C_B = {:.3} | deterministic double-greedy = {:.3} | randomized = {:.3}",
        opt.balance_cost(),
        det.cost,
        rnd.cost
    );
    Ok(())
}
