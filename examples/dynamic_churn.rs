//! A dynamic world end to end: a hub dies at t = 30 s and recovers at
//! t = 60 s, with background channel churn.
//!
//! The timeline DSL (`ScenarioBuilder::timeline`) makes the world move
//! mid-run: here the rank-0 hub — the one the routing scheme leans on
//! hardest — goes dark for the middle third of a 90 s run. The example
//! prints a per-phase TSR trace for each scheme: phase statistics come
//! from running the identical seed at cumulative horizons (30/60/90 s;
//! the trace generator is prefix-stable, so the shorter runs replay
//! exact prefixes) and differencing the counters.
//!
//! Expected shape: hub schemes (Splicer, A2L) crater during the outage
//! and recover after; flat source-routing schemes (Spider) lose only
//! the paths that crossed the dead relay.
//!
//! Run with: `cargo run --release --example dynamic_churn`

use pcn_harness::run_spec;
use pcn_routing::RunStats;
use pcn_workload::{ScenarioBuilder, SchemeChoice};

/// Runs the scenario truncated at `secs` and returns its stats.
fn run_until(scheme: SchemeChoice, secs: u64) -> RunStats {
    let spec = ScenarioBuilder::tiny()
        .duration_secs(secs)
        .arrivals_per_sec(8.0)
        .timeline(|t| t.hub_outage(30.0, 0, 60.0).churn(0.2))
        .scheme(scheme)
        .seed(11)
        .build();
    run_spec(&spec).report.stats
}

fn main() {
    println!("hub outage 30s → 60s over a 90s run, churn 0.2/s (tiny world)");
    println!(
        "{:<12} {:>16} {:>16} {:>16} {:>8} {:>8}",
        "scheme", "tsr pre-outage", "tsr during", "tsr post-recovery", "events", "expired"
    );
    for scheme in [
        SchemeChoice::Splicer,
        SchemeChoice::Spider,
        SchemeChoice::A2L,
    ] {
        // Cumulative horizons; phase k = stats(k) − stats(k−1). Payments
        // straddling a boundary count toward the phase that completes
        // them, which is exactly the operator's view of a TSR trace.
        let at30 = run_until(scheme, 30);
        let at60 = run_until(scheme, 60);
        let at90 = run_until(scheme, 90);
        let phase = |later: &RunStats, earlier: &RunStats| {
            // Saturating: a boundary-straddling payment can complete in
            // the shorter run yet be expired by later churn in the
            // longer one, so the cumulative counters are not strictly
            // monotone across horizons.
            let done = later.completed.saturating_sub(earlier.completed);
            let gen = later.generated.saturating_sub(earlier.generated);
            if gen == 0 {
                0.0
            } else {
                done as f64 / gen as f64
            }
        };
        println!(
            "{:<12} {:>16.3} {:>16.3} {:>16.3} {:>8} {:>8}",
            scheme.name(),
            at30.tsr(),
            phase(&at60, &at30),
            phase(&at90, &at60),
            at90.world_events_applied,
            at90.tus_expired_by_close,
        );
    }
    println!();
    println!(
        "hub schemes crater in the middle phase (their access legs close) and\n\
         recover after; churn expiries show TUs refunded, never leaked."
    );
}
